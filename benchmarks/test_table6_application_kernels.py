"""Bench: Table 6 — application kernels on a 64-node T3D partition.

Regenerates the three kernel rows (transpose, FEM, SOR) with the real
communication plans (compiler-generated patterns, actual message
sizes, pattern congestion) driving the runtime simulator, plus the
PVM3 paragraph under the table.

Absolute magnitudes depend on 1994 library costs we can only
approximate, so the asserted criteria are the paper's qualitative
claims: chained beats packing on every kernel; the model tracks the
transpose and FEM closely but towers over SOR (small messages); and
stock PVM3 collapses FEM below transpose below SOR.
"""

from conftest import regenerate, show
from repro.bench import table6
from repro.bench.paperdata import TABLE6_PVM3_T3D
from repro.bench.reporting import max_ratio_error


def test_table6(benchmark):
    rows = regenerate(benchmark, table6)
    show("Table 6 (Cray T3D, 64 nodes): application kernels, MB/s/node", rows)
    by_label = {row.label: row.ours for row in rows}

    for kernel in ("transpose", "FEM", "SOR"):
        packing = by_label[f"{kernel} packing meas"]
        chained = by_label[f"{kernel} chained meas"]
        model = by_label[f"{kernel} chained model"]
        assert chained > packing, kernel
        assert model > chained, kernel

    # SOR's model estimate towers over its measurement (small messages
    # and synchronization); transpose's model is within ~45%.
    assert by_label["SOR chained model"] > 1.7 * by_label["SOR chained meas"]
    assert by_label["transpose chained model"] < 1.6 * (
        by_label["transpose chained meas"]
    )

    # Ordering across kernels: FEM (indexed, tiny messages) is slowest.
    assert by_label["FEM chained meas"] < by_label["transpose chained meas"]
    assert by_label["FEM packing meas"] < by_label["SOR packing meas"]

    # Honest numeric band: every cell within ~2x of the paper's row.
    assert max_ratio_error(rows) < 1.0


def test_table6_pvm3_paragraph(benchmark):
    """Stock Cray PVM3 application performance (text under Table 6)."""
    from repro.apps import FEMKernel, FFT2D, SORKernel
    from repro.machines import t3d
    from repro.runtime.collective import CommunicationStep
    from repro.runtime.engine import CommRuntime
    from repro.runtime.libraries import pvm3_profile
    from repro.core.operations import OperationStyle

    def run():
        machine = t3d()
        runtime = CommRuntime(machine, library=pvm3_profile())
        rates = {}
        for name, kernel in (
            ("transpose", FFT2D(machine)),
            ("FEM", FEMKernel(machine)),
            ("SOR", SORKernel(machine)),
        ):
            plan = kernel.communication_plan()
            dominant = plan.dominant_op()
            step = CommunicationStep(
                runtime, plan.flows(), dominant.x, dominant.y, dominant.nbytes
            )
            rates[name] = step.run(OperationStyle.BUFFER_PACKING).per_node_mbps
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("== PVM3 application throughput (paper: FEM ~2, FFT ~6, SOR ~25) ==")
    for name, rate in rates.items():
        print(f"{name:12} {rate:6.1f} MB/s (paper {TABLE6_PVM3_T3D[name]:.0f})")

    # Shape: PVM3 collapses small-message kernels hardest.
    assert rates["FEM"] < rates["transpose"]
    # Everything is far below the low-level rates of Table 6.
    assert rates["FEM"] < 6.0
    assert rates["transpose"] < 15.0
