"""Bench: Figure 4 — strided local copy throughput vs stride.

The figure shows the two machines' opposite stride behaviour: on the
T3D the strided-store curve (1Cs) sits well above the strided-load
curve (sC1) — the write-back queue posts stores while blocking loads
eat full latency — and on the Paragon the curves meet or cross the
other way thanks to pipelined loads.
"""

from conftest import regenerate, show_series
from repro.bench import figure4
from repro.machines import paragon, t3d

STRIDES = (2, 4, 8, 16, 32, 64)


def test_fig4_t3d(benchmark):
    curves = regenerate(benchmark, figure4, t3d(), STRIDES)
    show_series("Figure 4 (Cray T3D): strided copies, MB/s", curves)
    stores = dict(curves["strided stores (1Cs)"])
    loads = dict(curves["strided loads (sC1)"])
    # Stores dominate loads at every large stride.
    for stride in STRIDES:
        if stride >= 8:
            assert stores[stride] > 1.5 * loads[stride]
    # Both fall from small strides to large and flatten at the tail.
    assert stores[2] > stores[64]
    assert loads[2] > loads[64]
    assert abs(loads[32] - loads[64]) / loads[64] < 0.15


def test_fig4_paragon(benchmark):
    curves = regenerate(benchmark, figure4, paragon(), STRIDES)
    show_series("Figure 4 (Intel Paragon): strided copies, MB/s", curves)
    stores = dict(curves["strided stores (1Cs)"])
    loads = dict(curves["strided loads (sC1)"])
    # Opposite asymmetry: at large strides, loads at least match stores.
    assert loads[64] >= 0.95 * stores[64]
    # And the machines never show the T3D's 2x store advantage.
    for stride in STRIDES:
        assert stores[stride] < 1.5 * loads[stride]


def test_fig4_cross_machine_contrast(benchmark):
    """The headline of Figure 4: the asymmetry flips between machines."""

    def ratios():
        t3d_curves = figure4(t3d(), (64,))
        paragon_curves = figure4(paragon(), (64,))
        t3d_ratio = (
            t3d_curves["strided stores (1Cs)"][0][1]
            / t3d_curves["strided loads (sC1)"][0][1]
        )
        paragon_ratio = (
            paragon_curves["strided stores (1Cs)"][0][1]
            / paragon_curves["strided loads (sC1)"][0][1]
        )
        return t3d_ratio, paragon_ratio

    t3d_ratio, paragon_ratio = benchmark.pedantic(ratios, rounds=1, iterations=1)
    print(
        f"\nstride-64 store/load ratio: T3D {t3d_ratio:.2f}, "
        f"Paragon {paragon_ratio:.2f}"
    )
    assert t3d_ratio > 1.5
    assert paragon_ratio < 1.05
