"""Bench: Sections 5.1.1-5.1.4 — the printed model estimates.

Evaluating our operation builders over the published calibration must
land on the throughput numbers the paper prints for buffer-packing and
chained transfers on both machines.
"""

from conftest import regenerate, show
from repro.bench import section51
from repro.bench.reporting import max_ratio_error
from repro.machines import paragon, t3d


def test_sec51_t3d(benchmark):
    rows = regenerate(benchmark, section51, t3d())
    show("Section 5.1.1/5.1.2 (Cray T3D): model estimates, MB/s", rows)
    assert max_ratio_error(rows) < 0.07


def test_sec51_paragon(benchmark):
    rows = regenerate(benchmark, section51, paragon())
    show(
        "Section 5.1.3/5.1.4 (Intel Paragon): model estimates, MB/s",
        rows,
        note=(
            "note: the paper's printed |1Q1| packing (20.7) disagrees with "
            "its own 1F0 formula (~24.6); we follow the formula."
        ),
    )
    # Every cell except the paper-inconsistent 1Q1 packing within 5%.
    strict = [row for row in rows if row.label != "1Q1 buffer-packing"]
    assert max_ratio_error(strict) < 0.05
    loose = [row for row in rows if row.label == "1Q1 buffer-packing"]
    assert max_ratio_error(loose) < 0.25
