"""Bench: Table 1 — local memory-to-memory copy throughput.

Regenerates the five copy figures per machine from the memory-system
simulator and compares with the published table.  Shape criteria: every
entry within a stated band, plus the asymmetries the paper highlights.
"""

import pytest

from conftest import regenerate, show
from repro.bench import table1
from repro.bench.reporting import max_ratio_error
from repro.machines import paragon, t3d


def test_table1_t3d(benchmark):
    rows = regenerate(benchmark, table1, t3d())
    show("Table 1 (Cray T3D): local copies, MB/s", rows)
    assert max_ratio_error(rows) < 0.15
    by_label = {row.label: row.ours for row in rows}
    # Strided stores far faster than strided loads (write-back queue).
    assert by_label["1C64"] > 1.5 * by_label["64C1"]
    # Contiguous is the best pattern.
    assert by_label["1C1"] == max(by_label.values())


def test_table1_paragon(benchmark):
    rows = regenerate(benchmark, table1, paragon())
    show("Table 1 (Intel Paragon): local copies, MB/s", rows)
    assert max_ratio_error(rows) < 0.40
    by_label = {row.label: row.ours for row in rows}
    # Pipelined loads: strided loads at least match strided stores.
    assert by_label["64C1"] >= 0.95 * by_label["1C64"]
    # The paper's inversion: indexed loads beat strided loads.
    assert by_label["wC1"] > by_label["64C1"]
    assert by_label["1C1"] == max(by_label.values())
