"""Bench: Figure 8 — buffer packing vs chained transfers on the Paragon.

Same experiment as Figure 7, on the Paragon, where the measured bars
fell further from the model: pipelined loads were unusable on the
A-step network interface parts (30-40% send loss) and sending and
receiving were not run simultaneously.  Those quirks are part of the
machine description, so the same gap appears here.
"""

from conftest import regenerate
from repro.bench import figure8


def test_fig8(benchmark):
    results = regenerate(benchmark, figure8)
    print()
    print("== Figure 8 (Intel Paragon): packing vs chained, MB/s ==")
    for name, entry in results.items():
        print(
            f"{name:8} {entry['buffer-packing model']:9.1f} "
            f"{entry['buffer-packing measured']:9.1f} "
            f"{entry['chained model']:9.1f} {entry['chained measured']:10.1f}"
        )

    for name, entry in results.items():
        # Chained wins everywhere, model and measurement.
        assert entry["chained model"] > entry["buffer-packing model"]
        assert entry["chained measured"] > entry["buffer-packing measured"]
        assert entry["chained measured"] <= entry["chained model"] * 1.05

    # The measured/model gap is wider than the T3D's for chained sends
    # (the send path carries the pipelined-load quirk).
    from repro.bench import figure7

    t3d_results = figure7()
    paragon_gap = (
        results["1Q64"]["chained measured"] / results["1Q64"]["chained model"]
    )
    t3d_gap = (
        t3d_results["1Q64"]["chained measured"]
        / t3d_results["1Q64"]["chained model"]
    )
    print(f"\nchained 1Q64 measured/model: Paragon {paragon_gap:.2f}, T3D {t3d_gap:.2f}")
    assert paragon_gap <= t3d_gap + 0.05
