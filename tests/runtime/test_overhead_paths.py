"""The faults-off / trace-off fast exits (BENCH_speed.json targets).

Two hot-path guarantees, checked structurally (call counting) rather
than by wall clock — the timing gate lives in ``scripts/bench_speed.py``
where repeated interleaved rounds can average the noise out:

* **Faults off** — with no plan in scope (or an *empty* plan, which
  must behave nominally) a transfer performs zero per-phase fault
  bookkeeping: no derate pass, no recovery charge, no per-flow
  slowdown lookups.
* **Trace off** — with no tracer installed the per-chunk pipeline loop
  never consults one; with a tracer the results are bit-identical.
"""

import time

import pytest

from repro.core.patterns import CONTIGUOUS, strided
from repro.faults import FaultPlan, injecting
from repro.runtime.collective import CommunicationStep
from repro.runtime.engine import CommRuntime
from repro.runtime.stages import Stage, StagePipeline
from repro.trace import tracing

_Y = strided(64)
_BYTES = 65536


def _forbid(monkeypatch, obj, name):
    calls = []

    def trap(*args, **kwargs):
        calls.append(name)
        raise AssertionError(f"{name} must not run on the fast path")

    monkeypatch.setattr(obj, name, trap)
    return calls


class TestFaultsOffFastExit:
    def test_empty_plan_precomputes_emptiness(self):
        assert FaultPlan(seed=0).is_empty()
        assert not FaultPlan.chaos(7).is_empty()

    def test_standing_plan_is_none_for_absent_or_empty_plans(self, machine):
        assert CommRuntime(machine)._standing_plan is None
        assert CommRuntime(machine, faults=FaultPlan(seed=3))._standing_plan is None
        chaotic = CommRuntime(machine, faults=FaultPlan.chaos(7))
        assert chaotic._standing_plan is chaotic.faults

    def test_no_fault_bookkeeping_without_a_plan(self, machine, monkeypatch):
        runtime = CommRuntime(machine)
        _forbid(monkeypatch, CommRuntime, "_apply_fault_derates")
        _forbid(monkeypatch, FaultPlan, "node_slowdown")
        _forbid(monkeypatch, FaultPlan, "has_wire_faults")
        runtime.transfer(CONTIGUOUS, _Y, _BYTES)

    def test_no_fault_bookkeeping_under_an_empty_plan(
        self, machine, monkeypatch
    ):
        runtime = CommRuntime(machine, faults=FaultPlan(seed=9))
        _forbid(monkeypatch, CommRuntime, "_apply_fault_derates")
        _forbid(monkeypatch, FaultPlan, "node_slowdown")
        _forbid(monkeypatch, FaultPlan, "has_wire_faults")
        runtime.transfer(CONTIGUOUS, _Y, _BYTES)

    def test_no_fault_bookkeeping_under_empty_context_plan(
        self, machine, monkeypatch
    ):
        runtime = CommRuntime(machine)
        _forbid(monkeypatch, CommRuntime, "_apply_fault_derates")
        _forbid(monkeypatch, FaultPlan, "node_slowdown")
        with injecting(FaultPlan(seed=4)):
            runtime.transfer(CONTIGUOUS, _Y, _BYTES)

    def test_step_fast_exit_matches_transfer(self, machine, monkeypatch):
        runtime = CommRuntime(machine, faults=FaultPlan(seed=2))
        step = CommunicationStep(
            runtime,
            flows=[(0, 1), (1, 2), (2, 0)],
            x=CONTIGUOUS,
            y=_Y,
            bytes_per_flow=_BYTES,
        )
        assert step._fault_plan() is None
        _forbid(monkeypatch, FaultPlan, "node_slowdown")
        _forbid(monkeypatch, FaultPlan, "wrap_topology")
        step.run()

    def test_empty_plan_result_bit_identical_to_no_plan(self, machine):
        bare = CommRuntime(machine).transfer(CONTIGUOUS, _Y, _BYTES)
        empty = CommRuntime(machine, faults=FaultPlan(seed=5)).transfer(
            CONTIGUOUS, _Y, _BYTES
        )
        assert bare == empty


class TestTraceOffFastExit:
    def test_untraced_pipeline_never_consults_a_tracer(self, monkeypatch):
        import repro.runtime.stages as stages_module

        def trap():
            raise AssertionError(
                "current_tracer must be read once per run, and the "
                "traced loop must not be entered without a tracer"
            )

        pipeline = StagePipeline(
            [Stage("send", 100.0, "cpu"), Stage("net", 50.0, "net")]
        )
        # The single allowed read happens inside run(); forbidding the
        # traced loop proves the disabled path is one attribute test.
        monkeypatch.setattr(
            StagePipeline,
            "_run_traced",
            lambda *args, **kwargs: trap(),
        )
        pipeline.run(1 << 20, chunk_bytes=8192)

    def test_traced_and_untraced_results_bit_identical(self, machine):
        runtime = CommRuntime(machine)
        bare = runtime.transfer(CONTIGUOUS, _Y, _BYTES)
        with tracing():
            traced = runtime.transfer(CONTIGUOUS, _Y, _BYTES)
        assert bare.ns == traced.ns
        assert bare.mbps == traced.mbps
        assert bare.phase_ns == traced.phase_ns
        assert bare.resource_busy_ns == traced.resource_busy_ns

    def test_traced_pipeline_emits_chunk_spans(self):
        pipeline = StagePipeline(
            [Stage("send", 100.0, "cpu"), Stage("net", 50.0, "net")]
        )
        bare = pipeline.run(1 << 16, chunk_bytes=8192)
        with tracing() as tracer:
            traced = pipeline.run(1 << 16, chunk_bytes=8192)
        assert traced.ns == bare.ns
        assert traced.stage_busy_ns == bare.stage_busy_ns
        assert len(tracer.spans(category="stage")) == 16  # 8 chunks x 2


@pytest.mark.slow
class TestInterleavedOverhead:
    """Interleaved-timing regression check for the two <2% targets.

    Rounds alternate modes back to back and the *median of per-round
    ratios* is compared — single-shot ratios on a noisy box swing by
    double digits, medians of interleaved rounds do not.  The bound
    here is looser than the bench gate (CI boxes are noisy); the
    authoritative 2% number comes from ``scripts/bench_speed.py``.
    """

    ROUNDS = 15

    def _median_ratio(self, baseline, candidate):
        ratios = []
        for __ in range(self.ROUNDS):
            t0 = time.perf_counter()
            baseline()
            t1 = time.perf_counter()
            candidate()
            t2 = time.perf_counter()
            ratios.append((t2 - t1) / (t1 - t0))
        return sorted(ratios)[len(ratios) // 2]

    def test_empty_plan_overhead_is_small(self, machine):
        bare = CommRuntime(machine)
        empty = CommRuntime(machine, faults=FaultPlan(seed=1))
        ratio = self._median_ratio(
            lambda: bare.transfer(CONTIGUOUS, _Y, _BYTES),
            lambda: empty.transfer(CONTIGUOUS, _Y, _BYTES),
        )
        assert ratio < 1.10

    def test_trace_off_overhead_is_small(self, machine):
        # Both sides run *without* a tracer; the candidate additionally
        # pays the (now hoisted, single) enabled check per pipeline run
        # inside a context that installed and removed a tracer earlier,
        # guarding against ContextVar residue making the off path slow.
        runtime = CommRuntime(machine)
        with tracing():
            runtime.transfer(CONTIGUOUS, _Y, _BYTES)
        ratio = self._median_ratio(
            lambda: runtime.transfer(CONTIGUOUS, _Y, _BYTES),
            lambda: runtime.transfer(CONTIGUOUS, _Y, _BYTES),
        )
        assert ratio < 1.10
