"""Tests for the chunked stage pipeline (repro.runtime.stages)."""

import pytest

from repro.runtime.stages import Stage, StagePipeline


def run(stages, nbytes=1 << 20, chunk=8192):
    return StagePipeline(stages).run(nbytes, chunk_bytes=chunk)


class TestSingleStage:
    def test_rate_recovered(self):
        result = run([Stage("only", 100.0, "cpu")])
        assert result.mbps == pytest.approx(100.0, rel=0.01)

    def test_chunk_overhead_slows(self):
        clean = run([Stage("s", 100.0, "cpu")])
        noisy = run([Stage("s", 100.0, "cpu", chunk_overhead_ns=10_000.0)])
        assert noisy.mbps < clean.mbps

    def test_startup_charged_once(self):
        with_startup = run([Stage("s", 100.0, "cpu", startup_ns=1e6)])
        without = run([Stage("s", 100.0, "cpu")])
        assert with_startup.ns == pytest.approx(without.ns + 1e6)


class TestParallelStages:
    def test_disjoint_resources_pipeline_to_min(self):
        """The model's parallel (min) rule emerges with many chunks."""
        stages = [
            Stage("send", 120.0, "cpu"),
            Stage("net", 60.0, "net"),
            Stage("recv", 150.0, "deposit"),
        ]
        result = run(stages)
        assert result.mbps == pytest.approx(60.0, rel=0.05)

    def test_bottleneck_identified(self):
        stages = [Stage("send", 120.0, "cpu"), Stage("net", 60.0, "net")]
        assert run(stages).bottleneck() == "net"


class TestSharedResource:
    def test_shared_resource_harmonic(self):
        """The model's sequential (harmonic) rule: same resource."""
        stages = [Stage("a", 100.0, "cpu"), Stage("b", 50.0, "cpu")]
        result = run(stages)
        expected = 1.0 / (1 / 100.0 + 1 / 50.0)
        assert result.mbps == pytest.approx(expected, rel=0.05)

    def test_mixed_composition(self):
        """cpu-shared pair in parallel with a slower background stage."""
        stages = [
            Stage("a", 100.0, "cpu"),
            Stage("b", 100.0, "cpu"),
            Stage("net", 40.0, "net"),
        ]
        result = run(stages)
        assert result.mbps == pytest.approx(40.0, rel=0.05)


class TestGranularity:
    def test_single_chunk_serializes_everything(self):
        stages = [Stage("a", 100.0, "cpu"), Stage("b", 100.0, "net")]
        nbytes = 1 << 20
        whole = StagePipeline(stages).run(nbytes, chunk_bytes=nbytes)
        fine = StagePipeline(stages).run(nbytes, chunk_bytes=4096)
        # Store-and-forward: both stages' full time; pipelined: ~max.
        assert whole.mbps == pytest.approx(50.0, rel=0.02)
        assert fine.mbps > 90.0

    def test_tail_chunk_handled(self):
        result = run([Stage("s", 100.0, "cpu")], nbytes=10_000, chunk=4096)
        assert result.nbytes == 10_000
        assert result.mbps == pytest.approx(100.0, rel=0.05)

    def test_busy_accounting_sums(self):
        stages = [Stage("a", 100.0, "cpu"), Stage("b", 50.0, "net")]
        result = run(stages)
        assert result.stage_busy_ns["b"] == pytest.approx(
            2 * result.stage_busy_ns["a"], rel=0.01
        )


class TestDuplicateNames:
    """Regression: busy/startup accounting was keyed by stage *name*,
    so two stages sharing a name merged their busy accounts and the
    second stage's startup was never charged."""

    def test_duplicate_names_keep_separate_accounts(self):
        stages = [Stage("copy", 100.0, "cpu"), Stage("copy", 50.0, "net")]
        result = run(stages)
        assert set(result.stage_busy_ns) == {"copy#0", "copy#1"}
        assert result.stage_busy_ns["copy#1"] == pytest.approx(
            2 * result.stage_busy_ns["copy#0"], rel=0.01
        )

    def test_duplicate_names_match_renamed_pipeline(self):
        dup = run([
            Stage("copy", 100.0, "cpu", startup_ns=1e6),
            Stage("copy", 50.0, "net", startup_ns=2e6),
        ])
        uniq = run([
            Stage("copy-a", 100.0, "cpu", startup_ns=1e6),
            Stage("copy-b", 50.0, "net", startup_ns=2e6),
        ])
        assert dup.ns == uniq.ns
        assert dup.mbps == uniq.mbps

    def test_both_startups_charged(self):
        base = run([Stage("s", 100.0, "cpu"), Stage("s", 100.0, "net")])
        both = run([
            Stage("s", 100.0, "cpu", startup_ns=1e6),
            Stage("s", 100.0, "net", startup_ns=1e6),
        ])
        # Disjoint resources at equal rates: the startups land one
        # after the other ahead of the stream, so both must show up.
        assert both.ns == pytest.approx(base.ns + 2e6)

    def test_unique_names_unmangled(self):
        result = run([Stage("a", 100.0, "cpu"), Stage("b", 50.0, "net")])
        assert set(result.stage_busy_ns) == {"a", "b"}


class TestValidation:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            StagePipeline([])

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            StagePipeline([Stage("s", 0.0, "cpu")])

    def test_nonpositive_sizes_rejected(self):
        pipeline = StagePipeline([Stage("s", 10.0, "cpu")])
        with pytest.raises(ValueError):
            pipeline.run(0)
        with pytest.raises(ValueError):
            pipeline.run(100, chunk_bytes=0)
