"""Collective operations: round lowering, execution, hierarchy."""

import math

import pytest

from repro.core.errors import ModelError
from repro.machines import cluster, t3d, xe
from repro.runtime.collectives import (
    ALGORITHMS,
    COLLECTIVE_OPS,
    collective_rounds,
    run_collective,
)
from repro.runtime.engine import CommRuntime


def _runtime(factory):
    return CommRuntime(factory(), rates="paper")


class TestRoundLowering:
    @pytest.mark.parametrize("nodes", [2, 3, 5, 8, 16, 17])
    @pytest.mark.parametrize("op", COLLECTIVE_OPS)
    def test_flows_stay_in_partition(self, op, nodes):
        for algorithm in ALGORITHMS[op]:
            for rnd in collective_rounds(op, algorithm, nodes, 4096):
                assert rnd.bytes_per_flow > 0
                for src, dst in rnd.flows:
                    assert 0 <= src < nodes
                    assert 0 <= dst < nodes
                    assert src != dst

    @pytest.mark.parametrize("nodes", [2, 4, 8, 32])
    def test_round_counts_power_of_two(self, nodes):
        log = nodes.bit_length() - 1
        assert len(collective_rounds(
            "broadcast", "binomial-tree", nodes, 1024)) == log
        assert len(collective_rounds(
            "broadcast", "ring", nodes, 1024)) == 2 * (nodes - 1)
        assert len(collective_rounds(
            "allreduce", "recursive-doubling", nodes, 1024)) == log
        assert len(collective_rounds(
            "alltoall", "pairwise-exchange", nodes, 1024)) == nodes - 1
        assert len(collective_rounds(
            "alltoall", "bruck", nodes, 1024)) == log

    def test_recursive_doubling_non_power_of_two_folds(self):
        # 6 nodes: fold round + 2 exchange rounds + unfold round.
        rounds = collective_rounds("allreduce", "recursive-doubling", 6, 512)
        assert len(rounds) == 4
        assert rounds[0].flows == ((4, 0), (5, 1))
        assert rounds[-1].flows == ((0, 4), (1, 5))

    def test_ring_moves_nth_payloads(self):
        rounds = collective_rounds("broadcast", "ring", 8, 8000)
        assert all(rnd.bytes_per_flow == 1000 for rnd in rounds)

    def test_binomial_tree_reaches_everyone(self):
        nodes = 16
        reached = {0}
        for rnd in collective_rounds("broadcast", "binomial-tree", nodes, 64):
            for src, dst in rnd.flows:
                assert src in reached, "tree sender must already hold data"
                reached.add(dst)
        assert reached == set(range(nodes))

    def test_validation(self):
        with pytest.raises(ModelError):
            collective_rounds("reduce", "ring", 8, 64)
        with pytest.raises(ModelError):
            collective_rounds("broadcast", "bruck", 8, 64)
        with pytest.raises(ModelError):
            collective_rounds("broadcast", "ring", 1, 64)
        with pytest.raises(ModelError):
            collective_rounds("broadcast", "ring", 8, 0)


class TestRunCollective:
    def test_phase_sum_invariant_exact(self):
        runtime = _runtime(cluster)
        result = run_collective(runtime, "allreduce", "ring", 8, 65536)
        parts = (
            result.intra_gather_ns
            + math.fsum(result.round_ns)
            + result.intra_scatter_ns
        )
        assert result.total_ns == parts
        assert result.per_node_mbps == 65536 / result.total_ns * 1000.0

    def test_deterministic(self):
        runtime = _runtime(xe)
        first = run_collective(runtime, "alltoall", "bruck", 16, 32768)
        second = run_collective(runtime, "alltoall", "bruck", 16, 32768)
        assert first.total_ns == second.total_ns
        assert first.round_ns == second.round_ns

    def test_flat_machines_never_hierarchical(self):
        runtime = _runtime(t3d)
        result = run_collective(
            runtime, "broadcast", "binomial-tree", 8, 4096,
            hierarchical=True,
        )
        assert not result.hierarchical
        assert result.intra_gather_ns == 0.0
        assert result.nic_contention == 1.0

    def test_cluster_defaults_to_hierarchical(self):
        runtime = _runtime(cluster)
        result = run_collective(runtime, "broadcast", "binomial-tree", 8, 4096)
        assert result.hierarchical
        assert result.intra_gather_ns > 0.0
        assert result.intra_scatter_ns == result.intra_gather_ns
        assert result.nic_contention == 1.0

    def test_cluster_flat_pays_nic_contention(self):
        runtime = _runtime(cluster)
        machine = runtime.machine
        flat = run_collective(
            runtime, "broadcast", "binomial-tree", 8, 4096,
            hierarchical=False,
        )
        assert not flat.hierarchical
        assert flat.nic_contention == machine.nic_contention(
            machine.cores_per_node
        )
        assert flat.nic_contention > 1.0
        assert flat.intra_gather_ns == 0.0

    def test_contention_scales_rounds(self):
        runtime = _runtime(cluster)
        flat = run_collective(
            runtime, "allreduce", "ring", 8, 65536, hierarchical=False
        )
        factor = flat.nic_contention
        for charged, step in zip(flat.round_ns, flat.rounds):
            assert charged == step.step_ns * factor
