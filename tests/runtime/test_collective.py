"""Tests for collective communication steps (repro.runtime.collective)."""

import pytest

from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, strided
from repro.netsim.patterns import all_to_all, cyclic_shift
from repro.runtime.collective import CommunicationStep
from repro.runtime.engine import CommRuntime


@pytest.fixture(scope="module")
def runtime(t3d_machine):
    return CommRuntime(t3d_machine)


def step(runtime, flows, nbytes=8192, **kwargs):
    return CommunicationStep(
        runtime, flows, CONTIGUOUS, strided(64), nbytes, **kwargs
    )


class TestConstruction:
    def test_empty_flows_rejected(self, runtime):
        with pytest.raises(ValueError):
            step(runtime, [])

    def test_bad_schedule_slack_rejected(self, runtime):
        with pytest.raises(ValueError):
            step(runtime, cyclic_shift(64), schedule_slack=0.5)


class TestCongestion:
    def test_scheduled_uses_port_floor(self, runtime):
        result = step(runtime, all_to_all(64), scheduled=True).run()
        assert result.congestion == 2.0  # T3D port sharing

    def test_schedule_slack_scales(self, runtime):
        result = step(
            runtime, all_to_all(64), scheduled=True, schedule_slack=1.5
        ).run()
        assert result.congestion == 3.0

    def test_unscheduled_uses_link_loads(self, runtime):
        scheduled = step(runtime, all_to_all(64), scheduled=True).run()
        raw = step(runtime, all_to_all(64), scheduled=False).run()
        assert raw.congestion > scheduled.congestion
        assert raw.per_node_mbps < scheduled.per_node_mbps


class TestStepAccounting:
    def test_messages_per_node(self, runtime):
        result = step(runtime, all_to_all(8)).run()
        assert result.messages_per_node == 7
        shift = step(runtime, cyclic_shift(8)).run()
        assert shift.messages_per_node == 1

    def test_bytes_per_node(self, runtime):
        result = step(runtime, all_to_all(8), nbytes=4096).run()
        assert result.bytes_per_node == 7 * 4096

    def test_throughput_consistent(self, runtime):
        result = step(runtime, all_to_all(8)).run()
        assert result.per_node_mbps == pytest.approx(
            result.bytes_per_node / result.step_ns * 1000.0
        )

    def test_many_messages_approach_steady_state(self, runtime):
        few = step(runtime, all_to_all(4)).run()
        many = step(runtime, all_to_all(64)).run()
        # Pipelining across messages: more messages amortize the fill.
        assert many.per_node_mbps >= few.per_node_mbps

    def test_sync_cost_slows_step(self, runtime):
        cheap = step(runtime, all_to_all(16), sync_per_message_ns=0.0).run()
        costly = step(
            runtime, all_to_all(16), sync_per_message_ns=100_000.0
        ).run()
        assert cheap.per_node_mbps > costly.per_node_mbps

    def test_styles_ranked(self, runtime):
        packing = step(runtime, all_to_all(16)).run(OperationStyle.BUFFER_PACKING)
        chained = step(runtime, all_to_all(16)).run(OperationStyle.CHAINED)
        assert chained.per_node_mbps > packing.per_node_mbps


class TestFanIn:
    """Regression: message slots must count receives, not just sends."""

    def test_fan_in_counts_receiver_load(self, runtime):
        # 7 senders, one receiver.  Each node sends at most one message,
        # but node 0 receives seven — it serializes seven message slots.
        flows = [(src, 0) for src in range(1, 8)]
        result = step(runtime, flows).run()
        assert result.messages_per_node == 7

    def test_fan_out_symmetric(self, runtime):
        flows = [(0, dst) for dst in range(1, 8)]
        result = step(runtime, flows).run()
        assert result.messages_per_node == 7

    def test_fan_in_slower_than_pairwise(self, runtime):
        pairwise = step(runtime, cyclic_shift(8)).run()
        fan_in = step(runtime, [(src, 0) for src in range(1, 8)]).run()
        assert fan_in.step_ns > pairwise.step_ns


class TestSteadyStateFallback:
    """Regression: ``max([cpu] + list(busy) or [ns])`` parenthesized as
    ``(cpu + busy) or ns``, leaving the fallback dead and letting an
    all-zero busy profile report a 0 ns per-message bottleneck."""

    def _sample(self, runtime, busy):
        from repro.runtime.engine import MeasuredTransfer

        return MeasuredTransfer(
            mbps=100.0,
            ns=50_000.0,
            nbytes=8192,
            style=OperationStyle.CHAINED,
            library="test",
            congestion=1.0,
            phase_ns=(("chained", 50_000.0),),
            resource_busy_ns=busy,
        )

    def test_zero_busy_falls_back_to_end_to_end(self, runtime):
        probe = step(runtime, all_to_all(4))
        sample = self._sample(runtime, busy=(("network", 0.0),))
        steady = probe._steady_state_ns(sample)
        efficiency = runtime.machine.quirks.runtime_efficiency
        assert steady == pytest.approx(
            sample.ns / efficiency + probe.sync_per_message_ns
        )

    def test_empty_busy_falls_back_too(self, runtime):
        probe = step(runtime, all_to_all(4))
        sample = self._sample(runtime, busy=())
        assert probe._steady_state_ns(sample) > probe.sync_per_message_ns

    def test_nonzero_busy_still_used(self, runtime):
        probe = step(runtime, all_to_all(4))
        sample = self._sample(
            runtime,
            busy=(("network", 30_000.0), ("sender_cpu", 10_000.0)),
        )
        efficiency = runtime.machine.quirks.runtime_efficiency
        assert probe._steady_state_ns(sample) == pytest.approx(
            30_000.0 / efficiency + probe.sync_per_message_ns
        )
