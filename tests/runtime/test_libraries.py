"""Tests for library profiles (repro.runtime.libraries)."""

import pytest

from repro.runtime.libraries import (
    LibraryProfile,
    lowlevel_profile,
    packing_profile,
    pvm3_profile,
    pvm_profile,
)


class TestProfiles:
    def test_overhead_ladder(self):
        """Per-message cost: PVM3 > PVM > packing > low-level."""
        costs = [
            pvm3_profile().per_message_ns,
            pvm_profile().per_message_ns,
            packing_profile().per_message_ns,
            lowlevel_profile().per_message_ns,
        ]
        assert costs == sorted(costs, reverse=True)

    def test_only_lowlevel_supports_chained(self):
        assert lowlevel_profile().supports_chained
        for profile in (pvm_profile(), pvm3_profile(), packing_profile()):
            assert not profile.supports_chained

    def test_pvm_buffers_and_packs(self):
        profile = pvm_profile()
        assert profile.system_buffer_copies == 2
        assert profile.pack_even_contiguous

    def test_lowlevel_skips_copies(self):
        profile = lowlevel_profile()
        assert profile.system_buffer_copies == 0
        assert not profile.pack_even_contiguous

    def test_packing_profile_packs_without_buffers(self):
        profile = packing_profile()
        assert profile.pack_even_contiguous
        assert profile.system_buffer_copies == 0

    def test_pvm_fragments(self):
        assert pvm_profile().fragment_bytes == 16384
        assert pvm3_profile().fragment_bytes == 4096
        assert lowlevel_profile().fragment_bytes > (1 << 40)

    def test_custom_profile(self):
        custom = LibraryProfile(name="mine", per_message_ns=1.0)
        assert custom.fragment_bytes > 0
        assert not custom.supports_chained
