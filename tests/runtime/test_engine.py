"""Tests for the communication runtime (repro.runtime.engine)."""

import pytest

from repro.core.errors import CompositionError
from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.runtime.engine import CommRuntime, measure_q
from repro.runtime.libraries import (
    lowlevel_profile,
    packing_profile,
    pvm3_profile,
    pvm_profile,
)

MSG = 64 * 1024


@pytest.fixture(scope="module")
def t3d_runtime(t3d_machine):
    return CommRuntime(t3d_machine)


@pytest.fixture(scope="module")
def paragon_runtime(paragon_machine):
    return CommRuntime(paragon_machine)


class TestBasics:
    def test_measured_transfer_fields(self, t3d_runtime):
        result = t3d_runtime.transfer(CONTIGUOUS, CONTIGUOUS, MSG)
        assert result.nbytes == MSG
        assert result.mbps > 0
        assert result.ns == pytest.approx(MSG / result.mbps * 1000.0)
        assert dict(result.resource_busy_ns)

    def test_invalid_size_rejected(self, t3d_runtime):
        with pytest.raises(ValueError):
            t3d_runtime.transfer(CONTIGUOUS, CONTIGUOUS, 0)

    def test_invalid_rate_source_rejected(self, t3d_machine):
        with pytest.raises(ValueError):
            CommRuntime(t3d_machine, rates="vibes")

    def test_paper_rates_accepted(self, t3d_machine):
        runtime = CommRuntime(t3d_machine, rates="paper")
        assert runtime.transfer(CONTIGUOUS, CONTIGUOUS, MSG).mbps > 0

    def test_pvm_cannot_do_chained(self, t3d_machine):
        runtime = CommRuntime(t3d_machine, library=pvm_profile())
        with pytest.raises(CompositionError, match="chained"):
            runtime.transfer(CONTIGUOUS, CONTIGUOUS, MSG, OperationStyle.CHAINED)


class TestMeasuredVsModel:
    """Measured throughput never beats the model (Figures 7/8)."""

    @pytest.mark.parametrize(
        "x,y",
        [
            (CONTIGUOUS, CONTIGUOUS),
            (CONTIGUOUS, strided(64)),
            (strided(64), CONTIGUOUS),
            (INDEXED, INDEXED),
        ],
    )
    @pytest.mark.parametrize("style", list(OperationStyle))
    def test_measured_below_model(self, machine, x, y, style):
        model = machine.model(source="simulated")
        measured = measure_q(machine, x, y, MSG, style)
        predicted = model.estimate(x, y, style).mbps
        assert measured.mbps <= predicted * 1.05

    def test_measured_within_half_of_model_for_large_messages(self, machine):
        model = machine.model(source="simulated")
        measured = measure_q(
            machine, CONTIGUOUS, strided(64), 1 << 20, OperationStyle.CHAINED
        )
        predicted = model.estimate(CONTIGUOUS, strided(64), "chained").mbps
        assert measured.mbps > 0.5 * predicted


class TestHeadlineOrdering:
    @pytest.mark.parametrize(
        "x,y",
        [
            (CONTIGUOUS, strided(64)),
            (strided(16), CONTIGUOUS),
            (INDEXED, INDEXED),
        ],
    )
    def test_chained_beats_packing_measured(self, machine, x, y):
        packing = measure_q(machine, x, y, MSG, OperationStyle.BUFFER_PACKING)
        chained = measure_q(machine, x, y, MSG, OperationStyle.CHAINED)
        assert chained.mbps > packing.mbps


class TestLibraries:
    def test_library_ladder(self, t3d_machine):
        """PVM3 < PVM < hand packing < chained low-level, at 64 KB."""
        rates = {}
        for library in (pvm3_profile(), pvm_profile(), packing_profile()):
            runtime = CommRuntime(t3d_machine, library=library)
            rates[library.name] = runtime.transfer(
                CONTIGUOUS, CONTIGUOUS, MSG, OperationStyle.BUFFER_PACKING
            ).mbps
        low = CommRuntime(t3d_machine, library=lowlevel_profile())
        rates["low-level"] = low.transfer(
            CONTIGUOUS, CONTIGUOUS, MSG, OperationStyle.CHAINED
        ).mbps
        assert (
            rates["PVM3"] < rates["PVM"] < rates["buffer-packing"] < rates["low-level"]
        )

    def test_small_messages_overhead_bound(self, t3d_machine):
        runtime = CommRuntime(t3d_machine, library=pvm_profile())
        small = runtime.transfer(
            CONTIGUOUS, CONTIGUOUS, 64, OperationStyle.BUFFER_PACKING
        )
        # 64 B in ~>120 us of overhead: well under 1 MB/s.
        assert small.mbps < 1.0

    def test_sweep_is_monotone_in_size(self, t3d_machine):
        runtime = CommRuntime(t3d_machine, library=pvm_profile())
        sizes = [256, 4096, 65536, 1 << 20]
        curve = runtime.sweep_message_sizes(sizes)
        rates = [rate for __, rate in curve]
        assert rates == sorted(rates)


class TestDuplexAndCongestion:
    def test_duplex_never_faster(self, t3d_runtime):
        simplex = t3d_runtime.transfer(CONTIGUOUS, CONTIGUOUS, MSG, duplex=False)
        duplex = t3d_runtime.transfer(CONTIGUOUS, CONTIGUOUS, MSG, duplex=True)
        assert duplex.mbps <= simplex.mbps

    def test_higher_congestion_slower(self, t3d_runtime):
        fast = t3d_runtime.transfer(CONTIGUOUS, CONTIGUOUS, MSG, congestion=1)
        slow = t3d_runtime.transfer(CONTIGUOUS, CONTIGUOUS, MSG, congestion=4)
        assert fast.mbps > slow.mbps

    def test_paragon_measured_simplex_convention(self, paragon_machine):
        assert paragon_machine.quirks.measures_simplex
        # measure_q should therefore not pay the duplex penalty.
        result = measure_q(
            paragon_machine, CONTIGUOUS, CONTIGUOUS, MSG, OperationStyle.CHAINED
        )
        runtime = CommRuntime(paragon_machine)
        duplex = runtime.transfer(CONTIGUOUS, CONTIGUOUS, MSG, duplex=True)
        assert result.mbps > duplex.mbps
