"""Tests for full-plan execution (repro.runtime.planstep)."""

import pytest

from repro.compiler.commgen import CommOp, CommPlan
from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.runtime.engine import CommRuntime
from repro.runtime.libraries import lowlevel_profile
from repro.runtime.planstep import PlanStep, _size_bucket


@pytest.fixture(scope="module")
def runtime(t3d_machine):
    return CommRuntime(t3d_machine, library=lowlevel_profile())


def uniform_plan(n_nodes=8, nwords=1024):
    ops = [
        CommOp(src, dst, CONTIGUOUS, strided(64), nwords)
        for src in range(n_nodes)
        for dst in range(n_nodes)
        if src != dst
    ]
    return CommPlan(ops, name="uniform")


def mixed_plan():
    """An FEM-like plan: varied sizes and patterns, unequal node loads."""
    ops = [
        CommOp(0, 1, INDEXED, INDEXED, 300),
        CommOp(1, 0, INDEXED, INDEXED, 280),
        CommOp(1, 2, INDEXED, INDEXED, 700),
        CommOp(2, 1, INDEXED, INDEXED, 680),
        CommOp(2, 3, CONTIGUOUS, CONTIGUOUS, 64),
        CommOp(3, 2, CONTIGUOUS, CONTIGUOUS, 64),
        CommOp(1, 3, INDEXED, INDEXED, 900),
    ]
    return CommPlan(ops, name="mixed")


class TestSizeBuckets:
    def test_powers_of_two(self):
        assert _size_bucket(64) == 64
        assert _size_bucket(65) == 128
        assert _size_bucket(8192) == 8192
        assert _size_bucket(8193) == 16384

    def test_small_sizes_floor(self):
        assert _size_bucket(1) == 64


class TestPlanStep:
    def test_empty_plan_rejected(self, runtime):
        with pytest.raises(ValueError):
            PlanStep(runtime, CommPlan([], name="empty"))

    def test_uniform_plan_matches_collective_step(self, runtime):
        """On a uniform plan, PlanStep and CommunicationStep agree."""
        from repro.runtime.collective import CommunicationStep

        plan = uniform_plan()
        dominant = plan.dominant_op()
        plan_result = PlanStep(runtime, plan).run(OperationStyle.CHAINED)
        step_result = CommunicationStep(
            runtime, plan.flows(), dominant.x, dominant.y, dominant.nbytes
        ).run(OperationStyle.CHAINED)
        assert plan_result.per_node_mbps == pytest.approx(
            step_result.per_node_mbps, rel=0.30
        )
        assert plan_result.congestion == step_result.congestion

    def test_slowest_node_determines_step(self, runtime):
        result = PlanStep(runtime, mixed_plan()).run(OperationStyle.CHAINED)
        # Node 1 sends the most bytes (280+700+900 words).
        assert result.messages_per_node == 3
        assert result.bytes_per_node == (280 + 700 + 900) * 8

    def test_styles_ranked_on_mixed_plan(self, t3d_machine):
        from repro.runtime.libraries import packing_profile

        chained = PlanStep(
            CommRuntime(t3d_machine, library=lowlevel_profile()), mixed_plan()
        ).run(OperationStyle.CHAINED)
        packing = PlanStep(
            CommRuntime(t3d_machine, library=packing_profile()), mixed_plan()
        ).run(OperationStyle.BUFFER_PACKING)
        assert chained.per_node_mbps > packing.per_node_mbps

    def test_sync_cost_matters(self, runtime):
        cheap = PlanStep(runtime, mixed_plan(), sync_per_message_ns=0.0)
        costly = PlanStep(runtime, mixed_plan(), sync_per_message_ns=200_000.0)
        assert (
            cheap.run(OperationStyle.CHAINED).per_node_mbps
            > costly.run(OperationStyle.CHAINED).per_node_mbps
        )

    def test_unscheduled_congestion_higher_for_aapc(self, runtime):
        plan = uniform_plan()
        scheduled = PlanStep(runtime, plan, scheduled=True)
        raw = PlanStep(runtime, plan, scheduled=False)
        assert raw.congestion() > scheduled.congestion()

    def test_throughput_consistent(self, runtime):
        result = PlanStep(runtime, mixed_plan()).run(OperationStyle.CHAINED)
        assert result.per_node_mbps == pytest.approx(
            result.bytes_per_node / result.step_ns * 1000.0
        )
