"""Tests for the calibration cache (repro.caching)."""

import json

import pytest

from repro.caching import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    CalibrationCache,
    content_key,
    default_cache,
)
from repro.core.calibration import ThroughputTable
from repro.core.transfers import TransferKind
from repro.machines import t3d
from repro.machines.measure import measure_table, measurement_cache_key
from repro.memsim.config import DRAMConfig, NodeConfig


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch, tmp_path):
    monkeypatch.delenv(CACHE_ENV, raising=False)
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))


def _table(mbps: float = 100.0) -> ThroughputTable:
    table = ThroughputTable("test")
    table.set(TransferKind.COPY, "1", "1", mbps)
    return table


class TestContentKey:
    def test_stable_across_calls(self):
        node = NodeConfig()
        assert content_key("x", node, 42) == content_key("x", node, 42)

    def test_sensitive_to_dataclass_fields(self):
        base = NodeConfig()
        slower = NodeConfig(dram=DRAMConfig(read_miss_ns=999.0))
        assert content_key(base) != content_key(slower)

    def test_sensitive_to_every_part(self):
        assert content_key("a", 1) != content_key("a", 2)
        assert content_key("a", 1) != content_key("b", 1)


class TestMemoryLayer:
    def test_round_trip(self):
        cache = CalibrationCache(use_disk=False)
        cache.store("k", _table())
        assert cache.lookup("k") is not None
        assert cache.memory_hits == 1

    def test_miss_returns_none(self):
        cache = CalibrationCache(use_disk=False)
        assert cache.lookup("absent") is None
        assert cache.misses == 1

    def test_lru_evicts_oldest(self):
        cache = CalibrationCache(max_entries=2, use_disk=False)
        cache.store("a", _table(1.0))
        cache.store("b", _table(2.0))
        cache.lookup("a")  # refresh "a"; "b" is now the oldest
        cache.store("c", _table(3.0))
        assert len(cache) == 2
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None

    def test_clear_empties_memory(self):
        cache = CalibrationCache(use_disk=False)
        cache.store("a", _table())
        cache.clear()
        assert len(cache) == 0


class TestDiskLayer:
    def test_round_trip_through_fresh_cache(self, tmp_path):
        directory = str(tmp_path / "disk")
        writer = CalibrationCache(directory=directory)
        writer.store("k", _table(123.0))
        reader = CalibrationCache(directory=directory)
        table = reader.lookup("k")
        assert table is not None
        assert table.get(TransferKind.COPY, "1", "1") == 123.0
        assert reader.disk_hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        directory = tmp_path / "disk"
        cache = CalibrationCache(directory=str(directory))
        path = directory / "tables" / "bad.json"
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.lookup("bad") is None
        assert cache.corrupt == 1

    @pytest.mark.parametrize(
        "content", ['{"truncat', "", '{"schema": "wrong-format"}', "[1,2,3]"]
    )
    def test_damaged_entries_never_raise(self, tmp_path, content):
        directory = tmp_path / "disk"
        cache = CalibrationCache(directory=str(directory))
        path = directory / "tables" / "k.json"
        path.parent.mkdir(parents=True)
        path.write_text(content)
        assert cache.lookup("k") is None
        assert cache.corrupt == 1
        assert cache.misses == 1

    def test_corrupt_entry_emits_trace_counter(self, tmp_path):
        from repro.trace import tracing

        directory = tmp_path / "disk"
        cache = CalibrationCache(directory=str(directory))
        path = directory / "tables" / "bad.json"
        path.parent.mkdir(parents=True)
        path.write_text("garbage")
        with tracing() as tracer:
            cache.lookup("bad")
        assert tracer.metrics.counters().get("cache.corrupt") == 1

    def test_missing_entry_is_a_plain_miss_not_corruption(self, tmp_path):
        cache = CalibrationCache(directory=str(tmp_path / "disk"))
        assert cache.lookup("absent") is None
        assert cache.corrupt == 0
        assert cache.misses == 1

    def test_corrupt_entry_is_rewritten_on_store(self, tmp_path):
        directory = tmp_path / "disk"
        cache = CalibrationCache(directory=str(directory))
        path = directory / "tables" / "k.json"
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert cache.lookup("k") is None
        cache.store("k", _table(55.0))
        fresh = CalibrationCache(directory=str(directory))
        table = fresh.lookup("k")
        assert table is not None
        assert table.get(TransferKind.COPY, "1", "1") == 55.0

    def test_unreadable_entry_is_a_counted_miss(self, tmp_path):
        import os

        directory = tmp_path / "disk"
        cache = CalibrationCache(directory=str(directory))
        cache.store("k", _table())
        path = cache._path("k")
        os.chmod(path, 0o000)
        try:
            fresh = CalibrationCache(directory=str(directory))
            if os.access(path, os.R_OK):  # running as root: chmod is moot
                pytest.skip("permissions not enforced for this user")
            assert fresh.lookup("k") is None
            assert fresh.corrupt == 1
        finally:
            os.chmod(path, 0o644)

    def test_unwritable_directory_degrades_to_memory(self, tmp_path):
        import os

        directory = tmp_path / "disk"
        directory.mkdir()
        os.chmod(directory, 0o555)
        try:
            cache = CalibrationCache(directory=str(directory))
            cache.store("k", _table(77.0))  # must not raise
            table = cache.lookup("k")
            assert table is not None
            assert table.get(TransferKind.COPY, "1", "1") == 77.0
        finally:
            os.chmod(directory, 0o755)

    def test_store_writes_valid_json(self, tmp_path):
        directory = tmp_path / "disk"
        cache = CalibrationCache(directory=str(directory))
        cache.store("k", _table())
        (path,) = (directory / "tables").glob("*.json")
        json.loads(path.read_text())  # must parse

    def test_clear_disk_removes_files(self, tmp_path):
        directory = tmp_path / "disk"
        cache = CalibrationCache(directory=str(directory))
        cache.store("k", _table())
        cache.clear(disk=True)
        assert not list((directory / "tables").glob("*.json"))

    def test_memory_only_cache_never_touches_disk(self, tmp_path):
        directory = tmp_path / "disk"
        cache = CalibrationCache(directory=str(directory), use_disk=False)
        cache.store("k", _table())
        assert not directory.exists()


class TestDisableSwitch:
    @pytest.mark.parametrize("value", ["off", "0", "no", "false", "OFF"])
    def test_env_var_disables_both_layers(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_ENV, value)
        cache = CalibrationCache(use_disk=False)
        cache.store("k", _table())
        assert len(cache) == 0
        assert cache.lookup("k") is None


class TestMeasureTableIntegration:
    def test_use_cache_false_bypasses_the_default_cache(self):
        machine = t3d()
        default_cache().clear()
        a = measure_table(machine, nwords=2048, use_cache=False)
        assert len(default_cache()) == 0
        b = measure_table(machine, nwords=2048, use_cache=False)
        assert a is not b  # remeasured, not served from cache
        assert a.to_dict() == b.to_dict()

    def test_cache_key_tracks_the_engine_selection(self, monkeypatch):
        machine = t3d()
        auto = measurement_cache_key(machine, 4, 2048, (8,))
        monkeypatch.setenv("REPRO_MEMSIM_ENGINE", "scalar")
        scalar = measurement_cache_key(machine, 4, 2048, (8,))
        assert auto != scalar

    def test_cache_key_tracks_node_parameters(self):
        machine = t3d()
        slower = machine.with_overrides(
            node=NodeConfig(dram=DRAMConfig(read_miss_ns=999.0))
        )
        assert measurement_cache_key(
            machine, 4, 2048, (8,)
        ) != measurement_cache_key(slower, 4, 2048, (8,))
