"""Property-based tests for the copy-transfer model algebra."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.calibration import ThroughputTable
from repro.core.composition import par, seq
from repro.core.patterns import AccessPattern, strided
from repro.core.throughput import evaluate
from repro.core.transfers import TransferKind, copy
from repro.core.resources import NodeRole

# -- strategies ---------------------------------------------------------------

strides = st.integers(min_value=2, max_value=4096)


@st.composite
def strided_patterns(draw):
    stride = draw(strides)
    block = draw(st.integers(min_value=1, max_value=max(1, stride - 1)))
    return AccessPattern.strided(stride, block=block)


memory_patterns = st.one_of(
    st.just(AccessPattern.contiguous()),
    st.just(AccessPattern.indexed()),
    strided_patterns(),
)

rates = st.floats(min_value=0.5, max_value=500.0, allow_nan=False)


class TestPatternProperties:
    @given(memory_patterns)
    def test_parse_subscript_roundtrip(self, pattern):
        assert AccessPattern.parse(pattern.subscript) == pattern

    @given(strides, strides)
    def test_equality_iff_same_stride(self, a, b):
        assert (strided(a) == strided(b)) == (a == b)

    @given(memory_patterns)
    def test_hash_consistent_with_equality(self, pattern):
        clone = AccessPattern.parse(pattern.subscript)
        assert hash(clone) == hash(pattern)


class TestEvaluationRules:
    @given(st.lists(rates, min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_parallel_is_min(self, branch_rates):
        """|X || Y|| ...| == min of branch rates, via network branches
        evaluated against per-branch tables merged into one."""
        table = ThroughputTable()
        # Use distinct one-sided copies so each branch gets its own rate.
        parts = []
        for i, rate in enumerate(branch_rates):
            pattern = strided(i + 2)
            table.set(TransferKind.COPY, pattern, "1", rate)
            parts.append(
                copy(pattern, AccessPattern.contiguous(), role=NodeRole(
                    ["local", "sender", "receiver"][i % 3]
                ))
            )
        # Give each branch a unique exclusive CPU by alternating roles;
        # skip validation since roles may still collide.
        estimate = evaluate(par(*parts), table, validate=False)
        assert estimate.mbps == pytest.approx(min(branch_rates))

    @given(st.lists(rates, min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_sequential_is_harmonic(self, stage_rates):
        table = ThroughputTable()
        parts = []
        previous = AccessPattern.contiguous()
        for i, rate in enumerate(stage_rates):
            nxt = strided(i + 2)
            table.set(TransferKind.COPY, previous, nxt, rate)
            parts.append(copy(previous, nxt))
            previous = nxt
        estimate = evaluate(seq(*parts), table)
        expected = 1.0 / sum(1.0 / r for r in stage_rates)
        assert estimate.mbps == pytest.approx(expected)

    @given(rates, rates, rates)
    def test_seq_associativity(self, a, b, c):
        table = ThroughputTable()
        p1, p2, p3 = (
            AccessPattern.contiguous(),
            strided(2),
            strided(3),
        )
        p4 = strided(5)
        table.set(TransferKind.COPY, p1, p2, a)
        table.set(TransferKind.COPY, p2, p3, b)
        table.set(TransferKind.COPY, p3, p4, c)
        t1, t2, t3 = copy(p1, p2), copy(p2, p3), copy(p3, p4)
        left = evaluate(seq(seq(t1, t2), t3), table).mbps
        right = evaluate(seq(t1, seq(t2, t3)), table).mbps
        assert left == pytest.approx(right)

    @given(st.lists(rates, min_size=2, max_size=4))
    @settings(max_examples=50)
    def test_sequential_slower_than_every_stage(self, stage_rates):
        table = ThroughputTable()
        parts = []
        previous = AccessPattern.contiguous()
        for i, rate in enumerate(stage_rates):
            nxt = strided(i + 2)
            table.set(TransferKind.COPY, previous, nxt, rate)
            parts.append(copy(previous, nxt))
            previous = nxt
        estimate = evaluate(seq(*parts), table)
        assert estimate.mbps < min(stage_rates)


class TestInterpolationProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from([2, 4, 8, 16, 32, 64]), rates),
            min_size=2,
            max_size=6,
            unique_by=lambda pair: pair[0],
        ),
        strides,
    )
    @settings(max_examples=100)
    def test_interpolation_bounded_by_anchors(self, anchors, query):
        table = ThroughputTable()
        for stride, rate in anchors:
            table.set(TransferKind.COPY, "1", stride, rate)
        value = table.lookup(copy(AccessPattern.contiguous(), strided(query)))
        values = [rate for __, rate in anchors]
        assert min(values) - 1e-9 <= value <= max(values) + 1e-9

    @given(rates)
    def test_large_strides_flat(self, rate):
        table = ThroughputTable()
        table.set(TransferKind.COPY, "1", 64, rate)
        for stride in (64, 128, 1024, 65536):
            assert table.lookup(
                copy(AccessPattern.contiguous(), strided(stride))
            ) == pytest.approx(rate)
