"""Property-based tests for the static analyzer.

The central invariant of the linter's severity policy: over arbitrary
composition trees — legal and illegal alike — ``Expr.validate()``
raises :class:`CompositionError` *if and only if* :func:`analyze`
emits at least one error-severity diagnostic.  The ``CT1xx`` rules are
exact static mirrors of validation, and no other expression rule is
allowed to reach error severity.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import Severity, analyze, parse_expr
from repro.analysis.tree import compute_spans, walk
from repro.core.composition import Expr, par, seq
from repro.core.errors import CompositionError
from repro.core.patterns import AccessPattern
from repro.core.resources import NodeRole
from repro.core.transfers import (
    copy,
    fetch_send,
    load_send,
    network_adp,
    network_data,
    receive_deposit,
    receive_store,
)

# -- strategies ---------------------------------------------------------------

patterns = st.one_of(
    st.just(AccessPattern.contiguous()),
    st.just(AccessPattern.indexed()),
    st.integers(min_value=2, max_value=128).map(AccessPattern.strided),
)

roles = st.sampled_from(list(NodeRole))

#: Leaf transfers spanning every kind, pattern family and node role, so
#: generated trees hit both legal chains and every illegality the CT1xx
#: rules cover (pattern mismatches, exclusive-resource collisions).
transfers = st.one_of(
    st.builds(copy, patterns, patterns, role=roles),
    st.builds(load_send, patterns),
    st.builds(fetch_send, patterns),
    st.builds(receive_store, patterns,
              coprocessor=st.booleans()),
    st.builds(receive_deposit, patterns),
    st.just(network_data()),
    st.just(network_adp()),
)


def expressions(max_leaves=6):
    return st.recursive(
        transfers.map(lambda t: t._as_term()),
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(
                lambda parts: seq(*parts)
            ),
            st.lists(children, min_size=2, max_size=3).map(
                lambda parts: par(*parts)
            ),
        ),
        max_leaves=max_leaves,
    )


def validate_raises(expr: Expr) -> bool:
    try:
        expr.validate()
    except CompositionError:
        return True
    return False


class TestErrorEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(expressions())
    def test_analyzer_error_iff_validate_raises(self, expr):
        diagnostics = analyze(expr)
        emitted = any(d.severity is Severity.ERROR for d in diagnostics)
        assert emitted == validate_raises(expr), (
            f"analyze/validate disagree on {expr.notation()!r}: "
            f"diagnostics={[d.rule for d in diagnostics]}"
        )

    @settings(max_examples=300, deadline=None)
    @given(expressions())
    def test_error_rules_stay_in_the_ct1xx_band(self, expr):
        for diagnostic in analyze(expr):
            if diagnostic.severity is Severity.ERROR:
                assert diagnostic.rule.startswith("CT1")


class TestStructuralProperties:
    @settings(max_examples=200, deadline=None)
    @given(expressions())
    def test_every_diagnostic_span_lies_within_notation(self, expr):
        notation = expr.notation()
        for diagnostic in analyze(expr):
            assert diagnostic.notation == notation
            if diagnostic.span is not None:
                assert 0 <= diagnostic.span.start <= diagnostic.span.end
                assert diagnostic.span.end <= len(notation)

    @settings(max_examples=200, deadline=None)
    @given(expressions())
    def test_spans_cover_every_node_faithfully(self, expr):
        notation = expr.notation()
        spans = compute_spans(expr)
        for path, node in walk(expr):
            span = spans[path]
            assert notation[span.start:span.end] == node.notation(
                top=(path == ())
            )

    @settings(max_examples=200, deadline=None)
    @given(expressions())
    def test_analyze_is_deterministic(self, expr):
        assert analyze(expr) == analyze(expr)


class TestParserProperties:
    @settings(max_examples=200, deadline=None)
    @given(expressions())
    def test_printed_notation_reparses_to_the_same_notation(self, expr):
        notation = expr.notation()
        assert parse_expr(notation).notation() == notation

    @settings(max_examples=200, deadline=None)
    @given(expressions())
    def test_reparse_preserves_error_equivalence(self, expr):
        # Round-tripping may re-home copy roles, which must never
        # change *whether* the expression is legal-by-pattern; compare
        # the analyzer verdict on the reparsed tree with its own
        # validate() instead of the original's.
        reparsed = parse_expr(expr.notation())
        emitted = any(
            d.severity is Severity.ERROR for d in analyze(reparsed)
        )
        assert emitted == validate_raises(reparsed)
