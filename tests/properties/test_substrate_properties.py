"""Property-based tests for the simulators and compiler substrates."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import assume, given, settings

from repro.compiler.classify import classify_offsets
from repro.compiler.distributions import Block, BlockCyclic, Cyclic
from repro.core.patterns import AccessPattern
from repro.memsim.streams import make_stream
from repro.netsim.topology import Mesh, Torus
from repro.runtime.stages import Stage, StagePipeline


class TestClassifierRecovery:
    """classify_offsets inverts the offset generators."""

    @given(
        st.integers(min_value=2, max_value=512),
        st.integers(min_value=2, max_value=64),
    )
    def test_recovers_plain_strides(self, stride, count):
        offsets = np.arange(count) * stride
        assert classify_offsets(offsets) == AccessPattern.strided(stride)

    @given(
        st.integers(min_value=2, max_value=256),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=2, max_value=16),
    )
    def test_recovers_blocked_strides(self, stride, block, repeats):
        assume(block < stride)
        starts = np.arange(repeats) * stride
        offsets = (starts[:, None] + np.arange(block)).ravel()
        expected = (
            AccessPattern.contiguous()
            if block == 1 and stride == 1
            else AccessPattern.strided(stride, block=block)
            if block > 1
            else AccessPattern.strided(stride)
        )
        assert classify_offsets(offsets) == expected

    @given(st.integers(min_value=1, max_value=512))
    def test_recovers_contiguous(self, count):
        assert classify_offsets(np.arange(count)).is_contiguous

    @given(st.permutations(list(range(12))))
    def test_permutations_never_misclassified_as_strided(self, perm):
        offsets = np.asarray(perm)
        pattern = classify_offsets(offsets)
        if pattern.is_contiguous:
            assert list(perm) == sorted(perm)
        # Strided classifications must be genuine.
        if pattern.is_strided:
            diffs = np.diff(offsets)
            assert len(np.unique(diffs)) <= 2


class TestDistributionProperties:
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60)
    def test_partition_of_unity(self, extent, n_nodes, block):
        for dist in (
            Block(extent, n_nodes),
            Cyclic(extent, n_nodes),
            BlockCyclic(extent, n_nodes, block),
        ):
            owned = np.concatenate(
                [dist.local_indices(p) for p in range(n_nodes)]
            )
            assert sorted(owned.tolist()) == list(range(extent))

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60)
    def test_offsets_are_bijections(self, extent, n_nodes):
        for dist in (Block(extent, n_nodes), Cyclic(extent, n_nodes)):
            for p in range(n_nodes):
                owned = dist.local_indices(p)
                offsets = dist.local_offset(owned)
                assert sorted(offsets.tolist()) == list(range(len(owned)))


class TestTopologyProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=3),
        st.data(),
    )
    @settings(max_examples=60)
    def test_routes_connect(self, dims, data):
        torus = Torus(*dims)
        src = data.draw(st.integers(0, torus.n_nodes - 1))
        dst = data.draw(st.integers(0, torus.n_nodes - 1))
        links = torus.route(src, dst)
        if src == dst:
            assert links == []
        else:
            assert links[0].src == src
            assert links[-1].dst == dst
            for a, b in zip(links, links[1:]):
                assert a.dst == b.src

    @given(
        st.lists(st.integers(min_value=2, max_value=6), min_size=1, max_size=3),
        st.data(),
    )
    @settings(max_examples=60)
    def test_torus_routes_take_the_short_way(self, dims, data):
        torus = Torus(*dims)
        src = data.draw(st.integers(0, torus.n_nodes - 1))
        dst = data.draw(st.integers(0, torus.n_nodes - 1))
        bound = sum(d // 2 for d in dims)
        assert len(torus.route(src, dst)) <= bound

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=2, max_value=5),
        st.lists(
            st.tuples(st.integers(0, 24), st.integers(0, 24)),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=60)
    def test_link_loads_conserve_hops(self, rows, cols, raw_flows):
        mesh = Mesh(rows, cols)
        flows = [
            (s % mesh.n_nodes, d % mesh.n_nodes) for s, d in raw_flows
        ]
        loads = mesh.link_loads(flows)
        total_hops = sum(
            len(mesh.route(s, d)) for s, d in flows if s != d
        )
        assert sum(loads.values()) == total_hops


class TestStreamProperties:
    @given(
        st.integers(min_value=1, max_value=2048),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40)
    def test_indexed_streams_word_aligned_and_sized(self, nwords, run):
        stream = make_stream(AccessPattern.indexed(), nwords, index_run=run)
        assert stream.nwords == nwords
        assert np.all(stream.addresses % 8 == 0)
        assert len(stream.index_addresses) == nwords


class TestPipelineProperties:
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=500.0),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=1024, max_value=1 << 20),
    )
    @settings(max_examples=60)
    def test_pipeline_never_beats_slowest_stage(self, stage_rates, nbytes):
        stages = [
            Stage(f"s{i}", rate, f"resource{i}")
            for i, rate in enumerate(stage_rates)
        ]
        result = StagePipeline(stages).run(nbytes, chunk_bytes=4096)
        assert result.mbps <= min(stage_rates) * (1 + 1e-9)

    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=1.0, max_value=500.0),
        st.integers(min_value=8192, max_value=1 << 20),
    )
    @settings(max_examples=60)
    def test_adding_a_stage_never_helps(self, rate_a, rate_b, nbytes):
        one = StagePipeline([Stage("a", rate_a, "ra")]).run(nbytes)
        two = StagePipeline(
            [Stage("a", rate_a, "ra"), Stage("b", rate_b, "rb")]
        ).run(nbytes)
        assert two.ns >= one.ns - 1e-9
