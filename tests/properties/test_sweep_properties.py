"""Determinism properties of the sharded sweep engine.

The sweep's reproducibility obligation is absolute: the same
:class:`~repro.sweep.SweepSpec` must merge to a **bit-identical**
canonical payload no matter how the execution was sliced — worker
count, shard size, shard submission order, batched or cold memos.
These properties drive randomly generated specs through every
execution strategy and compare SHA-256 digests of the canonical JSON.

The transfer grids here use ``rates="paper"`` so Hypothesis can afford
many examples (no simulator calibration in the loop).  The
simulated-rates path — where the fast/scalar engine choice could in
principle leak in — is covered by the slow-marked engine-parity test
at the bottom and by the speed benchmark's digest cross-check.
"""

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sweep import (
    NOMINAL_SEED,
    SweepSpec,
    figure7_spec,
    run_serial,
    run_sweep,
)

#: Pattern-pair pool for generated grids (paper notations).
PAIR_POOL = (
    ("1", "1"),
    ("1", "64"),
    ("64", "1"),
    ("1", "w"),
    ("w", "1"),
    ("w", "w"),
)

SLOW_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def transfer_specs(draw):
    """Small random transfer grids over the paper-rate calibration."""
    machines = draw(
        st.sampled_from([("t3d",), ("paragon",), ("t3d", "paragon")])
    )
    pairs = tuple(
        draw(
            st.lists(
                st.sampled_from(PAIR_POOL),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
    )
    styles = draw(
        st.sampled_from(
            [("buffer-packing",), ("chained",),
             ("buffer-packing", "chained")]
        )
    )
    sizes = tuple(
        draw(
            st.lists(
                st.sampled_from([4096, 8192, 65536]),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
    )
    seeds = draw(
        st.sampled_from([(), (NOMINAL_SEED, 3), (11,)])
    )
    return SweepSpec(
        machines=machines,
        pairs=pairs,
        styles=styles,
        sizes=sizes,
        seeds=seeds,
        rates="paper",
    )


class TestDeterministicMerge:
    @SLOW_SETTINGS
    @given(spec=transfer_specs(), workers=st.sampled_from([2, 4]))
    def test_worker_count_cannot_change_results(self, spec, workers):
        reference = run_sweep(spec, workers=1).digest()
        assert run_sweep(spec, workers=workers).digest() == reference

    @SLOW_SETTINGS
    @given(
        spec=transfer_specs(),
        shard_size=st.integers(min_value=1, max_value=7),
        shuffle_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_sharding_and_order_cannot_change_results(
        self, spec, shard_size, shuffle_seed
    ):
        reference = run_sweep(spec, workers=1).digest()
        shuffled = run_sweep(
            spec,
            workers=1,
            shard_size=shard_size,
            shuffle_seed=shuffle_seed,
        )
        assert shuffled.digest() == reference

    @SLOW_SETTINGS
    @given(spec=transfer_specs())
    def test_batching_cannot_change_results(self, spec):
        cold = run_serial(spec, batched=False)
        warm = run_serial(spec, batched=True)
        assert cold.canonical_json() == warm.canonical_json()

    @SLOW_SETTINGS
    @given(spec=transfer_specs())
    def test_spec_serialization_cannot_change_results(self, spec):
        reloaded = SweepSpec.from_dict(spec.to_dict())
        assert (
            run_sweep(reloaded, workers=1).digest()
            == run_sweep(spec, workers=1).digest()
        )


@pytest.mark.slow
class TestEngineParity:
    """Where the fastpath claims parity, sweeping under either engine
    gives numerically equal calibration rates (rel 1e-9, the fastpath
    contract — the engines reassociate float sums, so this is a
    numeric bound, not a bitwise one)."""

    def test_calibration_sweep_scalar_vs_auto(self, monkeypatch):
        from repro.caching import CACHE_ENV
        from repro.memsim.node import ENGINE_ENV
        from repro.sweep import calibration_spec

        spec = dataclasses.replace(calibration_spec("t3d"), nwords=4096)
        monkeypatch.setenv(CACHE_ENV, "off")

        monkeypatch.setenv(ENGINE_ENV, "scalar")
        scalar = run_sweep(spec, workers=1)
        monkeypatch.setenv(ENGINE_ENV, "auto")
        auto = run_sweep(spec, workers=1)

        for cell, srow, arow in zip(
            scalar.cells, scalar.rows, auto.rows
        ):
            assert srow["mbps"] == pytest.approx(
                arow["mbps"], rel=1e-9
            ), cell.cell_id


@pytest.mark.slow
class TestSimulatedRatesAcrossWorkers:
    """The full simulated-rates figure-7 grid — the exact acceptance
    surface — is bit-identical between in-process and 4-worker pooled
    execution (workers share the engine env and disk cache)."""

    def test_figure7_grid_pooled_vs_inline(self):
        spec = figure7_spec()
        assert (
            run_sweep(spec, workers=4, shard_size=2).digest()
            == run_sweep(spec, workers=1).digest()
        )
