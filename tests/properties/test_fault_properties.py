"""Property-based tests for the fault-injection replay guarantees.

The contracts under test (see docs/FAULTS.md):

* **Replay** — the same seed and the same plan produce bit-identical
  degraded results, however often they run.
* **Engine independence** — fault decisions are pure hashes of
  ``(seed, key)``, so the scalar oracle and the vectorized fast path
  make identical decisions; on the paper-rates path (which never
  touches the memory simulator) the entire ``MeasuredTransfer`` is
  bit-identical across engines, and on simulated rates the results
  agree to the engines' own parity tolerance.
* **Zero overhead when off** — an empty plan is bit-identical to not
  injecting at all.
"""

import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, strided
from repro.faults import (
    DepositFault,
    FaultPlan,
    FragmentFault,
    LinkFault,
    NodeFault,
    RetryPolicy,
    injecting,
)
from repro.machines import t3d
from repro.memsim.node import ENGINE_ENV
from repro.runtime.collective import CommunicationStep
from repro.runtime.engine import CommRuntime

#: Loss/corruption kept moderate and the retry budget deep so the
#: deterministic draws cannot realistically exhaust it (p <= 0.3 over
#: 25 attempts).
_RETRY = RetryPolicy(max_attempts=25)

_PLANS = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    links=st.lists(
        st.builds(
            LinkFault,
            derate=st.floats(min_value=0.25, max_value=1.0),
        ),
        max_size=2,
    ).map(tuple),
    nodes=st.lists(
        st.builds(
            NodeFault,
            node=st.integers(min_value=0, max_value=7),
            slowdown=st.floats(min_value=1.0, max_value=8.0),
        ),
        max_size=2,
    ).map(tuple),
    deposits=st.lists(
        st.builds(
            DepositFault,
            node=st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
        ),
        max_size=1,
    ).map(tuple),
    fragments=st.lists(
        st.builds(
            FragmentFault,
            loss=st.floats(min_value=0.0, max_value=0.3),
            corrupt=st.floats(min_value=0.0, max_value=0.3),
        ),
        max_size=1,
    ).map(tuple),
    retry=st.just(_RETRY),
)

_SIZES = st.sampled_from([4096, 65536, 1 << 20])

_PAPER = CommRuntime(t3d(), rates="paper")


def _transfer(runtime, plan, nbytes):
    with injecting(plan):
        return runtime.transfer(
            strided(64, 8), CONTIGUOUS, nbytes,
            style=OperationStyle.CHAINED, src=0, dst=1,
        )


def _fingerprint(result):
    return (
        result.mbps,
        result.ns,
        result.style,
        result.phase_ns,
        result.resource_busy_ns,
        result.retries,
        result.degraded,
    )


class TestReplayDeterminism:
    @given(plan=_PLANS, nbytes=_SIZES)
    @settings(max_examples=30, deadline=None)
    def test_same_plan_same_result(self, plan, nbytes):
        first = _transfer(_PAPER, plan, nbytes)
        second = _transfer(_PAPER, plan, nbytes)
        assert _fingerprint(first) == _fingerprint(second)

    @given(plan=_PLANS)
    @settings(max_examples=20, deadline=None)
    def test_step_replay(self, plan):
        flows = [(i, (i + 1) % 8) for i in range(8)]
        step = CommunicationStep(
            _PAPER, flows, CONTIGUOUS, CONTIGUOUS, 65536
        )
        with injecting(plan):
            first = step.run()
        with injecting(plan):
            second = step.run()
        assert first.per_node_mbps == second.per_node_mbps
        assert first.step_ns == second.step_ns
        assert _fingerprint(first.sample) == _fingerprint(second.sample)


class TestEngineIndependence:
    @given(plan=_PLANS, nbytes=_SIZES)
    @settings(max_examples=15, deadline=None)
    def test_paper_rates_bit_identical_across_engines(self, plan, nbytes):
        results = {}
        for engine in ("scalar", "fast"):
            previous = os.environ.get(ENGINE_ENV)
            os.environ[ENGINE_ENV] = engine
            try:
                results[engine] = _transfer(_PAPER, plan, nbytes)
            finally:
                if previous is None:
                    os.environ.pop(ENGINE_ENV, None)
                else:
                    os.environ[ENGINE_ENV] = previous
        assert _fingerprint(results["scalar"]) == _fingerprint(results["fast"])

    @pytest.mark.slow
    @given(plan=_PLANS)
    @settings(max_examples=5, deadline=None)
    def test_simulated_rates_agree_to_engine_parity(self, plan):
        results = {}
        for engine in ("scalar", "fast"):
            previous = os.environ.get(ENGINE_ENV)
            os.environ[ENGINE_ENV] = engine
            try:
                runtime = CommRuntime(t3d(), rates="simulated")
                results[engine] = _transfer(runtime, plan, 65536)
            finally:
                if previous is None:
                    os.environ.pop(ENGINE_ENV, None)
                else:
                    os.environ[ENGINE_ENV] = previous
        scalar, fast = results["scalar"], results["fast"]
        # Decisions (retries, style, degradation) are engine-free; only
        # the underlying stage rates differ, and those agree to the
        # engines' documented parity.
        assert scalar.retries == fast.retries
        assert scalar.style == fast.style
        assert (scalar.degraded is None) == (fast.degraded is None)
        assert [n for n, __ in scalar.phase_ns] == [n for n, __ in fast.phase_ns]
        assert scalar.ns == pytest.approx(fast.ns, rel=1e-6)


class TestZeroOverheadWhenOff:
    @given(seed=st.integers(min_value=0, max_value=2**31), nbytes=_SIZES)
    @settings(max_examples=20, deadline=None)
    def test_empty_plan_bit_identical_to_no_plan(self, seed, nbytes):
        bare = _PAPER.transfer(
            strided(64, 8), CONTIGUOUS, nbytes,
            style=OperationStyle.CHAINED, src=0, dst=1,
        )
        under = _transfer(_PAPER, FaultPlan(seed=seed), nbytes)
        assert _fingerprint(bare) == _fingerprint(under)
