"""Property-based tests for the traffic engine's replay guarantees.

The contracts under test (see docs/LOAD.md):

* **Replay** — the same (profile, seed, horizon) produces a
  bit-identical canonical report, for any worker count and however
  the generators are interleaved in the profile.
* **Empty workload** — a horizon too short for any arrival completes
  zero requests and reports an all-zero latency distribution.
* **Closed-loop degeneracy** — with think time 0 a client's requests
  are back to back: each issue departs exactly when the previous one
  completes, so issue order is sequential per client and the number
  of in-flight requests never exceeds the client count.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.load import (
    ClosedLoopSpec,
    LatencyStore,
    LoadEngine,
    LoadProfile,
    OpenLoopSpec,
    RequestTemplate,
    Station,
)

_TEMPLATES = (
    RequestTemplate("small", nbytes=2048),
    RequestTemplate("large", y="64", nbytes=32768, priority=1),
)


def _open_spec(index: int, rate: float, burst: int) -> OpenLoopSpec:
    return OpenLoopSpec(
        name=f"gen{index}",
        rate_per_s=rate,
        burst=burst,
        templates=_TEMPLATES,
    )


_PROFILE_BITS = st.tuples(
    st.integers(min_value=1, max_value=4),     # generators
    st.floats(min_value=500.0, max_value=20_000.0),  # rate
    st.integers(min_value=1, max_value=4),     # burst
    st.sampled_from(["round-robin", "least-loaded", "affinity"]),
    st.sampled_from(["fifo", "priority"]),
)


@given(
    bits=_PROFILE_BITS,
    seed=st.integers(min_value=0, max_value=2**31),
    workers=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=15, deadline=None)
def test_same_seed_bit_identical_across_worker_counts(bits, seed, workers):
    count, rate, burst, dispatch, discipline = bits
    profile = LoadProfile(
        name="prop",
        dispatch=dispatch,
        discipline=discipline,
        open_loops=tuple(
            _open_spec(index, rate, burst) for index in range(count)
        ),
    )
    serial = LoadEngine(profile, seed=seed).run(5e6, workers=1)
    threaded = LoadEngine(profile, seed=seed).run(5e6, workers=workers)
    assert serial.canonical_json() == threaded.canonical_json()
    assert serial.digest() == threaded.digest()


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    order=st.permutations(range(3)),
)
@settings(max_examples=15, deadline=None)
def test_generator_interleaving_does_not_change_per_generator_streams(
    seed, order
):
    """Listing the same generators in a different order must not change
    what each generator does: arrival streams are keyed on generator
    *name*, and event ordering on content, so the completed request
    count and the latency distribution are order-invariant.  (The
    report embeds the profile verbatim, so whole-payload equality is
    deliberately not asserted — the profile listing itself differs.)"""
    specs = [_open_spec(index, 4000.0 * (index + 1), 1) for index in range(3)]
    base = LoadProfile(name="prop", open_loops=tuple(specs))
    shuffled = LoadProfile(
        name="prop", open_loops=tuple(specs[index] for index in order)
    )
    first = LoadEngine(base, seed=seed).run(5e6)
    second = LoadEngine(shuffled, seed=seed).run(5e6)
    assert first.offered == second.offered
    assert first.completed == second.completed
    assert first.latency == second.latency


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_empty_workload_reports_zero_latency(seed):
    # One expected arrival per 10 ms; a 1 ns horizon sees none
    # (the first exponential gap is astronomically unlikely to be
    # sub-nanosecond, and the draw is deterministic anyway).
    profile = LoadProfile(
        name="idle",
        open_loops=(
            OpenLoopSpec(name="sparse", rate_per_s=100.0,
                         templates=_TEMPLATES),
        ),
    )
    result = LoadEngine(profile, seed=seed).run(1.0)
    assert result.offered == 0
    assert result.completed == 0
    summary = result.latency
    assert summary["count"] == 0
    assert summary["p50"] == summary["p99"] == summary["p999"] == 0.0
    assert all(
        station["served"] == 0 and station["busy_ns"] == 0.0
        for station in result.stations.values()
    )


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    clients=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_zero_think_closed_loop_is_back_to_back(seed, clients):
    profile = LoadProfile(
        name="b2b",
        closed_loops=(
            ClosedLoopSpec(
                name="c",
                clients=clients,
                think_ns=0.0,
                templates=(RequestTemplate("t", nbytes=2048),),
            ),
        ),
    )
    result = LoadEngine(profile, seed=seed).run(5e6)
    # Closed loop: a client's next issue departs exactly at the
    # previous completion, so the loop can never have more than
    # `clients` requests in flight and every offered request completes.
    assert result.completed == result.offered > 0
    max_depth = max(
        station["max_depth"] for station in result.stations.values()
    )
    assert max_depth <= max(0, clients - 1)
    # Per-client issue streams are sequential: with think 0 the total
    # busy time of the bottleneck station accounts for every request
    # back to back (no idle gaps while a client waits to think).
    if clients == 1:
        nic_busy = sum(
            station["busy_ns"]
            for name, station in result.stations.items()
            if name.endswith("/nic")
        )
        per_request = nic_busy / result.completed
        # Completions are spaced by the full round-trip (all legs +
        # transit), each >= the NIC service time.
        assert result.latency["max"] >= per_request


@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=1e9),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_percentiles_are_monotone_observed_values(samples):
    store = LatencyStore()
    for sample in samples:
        store.record(sample)
    summary = store.summary()
    assert (
        summary["min"] <= summary["p50"] <= summary["p99"]
        <= summary["p999"] <= summary["max"]
    )
    # Nearest-rank: every percentile is an actual sample, and the
    # percentile function is monotone in q.
    quantiles = [store.percentile(q) for q in (0.0, 10.0, 50.0, 90.0,
                                               99.0, 99.9, 100.0)]
    assert all(value in samples for value in quantiles)
    assert quantiles == sorted(quantiles)


_STATION_OPS = st.lists(
    st.tuples(
        st.sampled_from(["offer", "pop"]),
        st.integers(min_value=0, max_value=3),        # priority
        st.sampled_from([0.0, 5.0, 50.0]),            # deadline_ns
        st.floats(min_value=1.0, max_value=20.0),     # time gap
    ),
    min_size=1,
    max_size=40,
)


@given(
    ops=_STATION_OPS,
    discipline=st.sampled_from(["fifo", "priority"]),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_station_accounting_is_exact_under_bounded_interleavings(
    ops, discipline, capacity
):
    """Whatever the offer / reject / evict / shed interleaving, the
    station's exact accounting holds: the waiting line never exceeds
    capacity, every accepted request is eventually popped, shed, still
    queued, or was evicted, and the depth integral equals the step
    function an independent model integrates."""
    station = Station("s", discipline, capacity=capacity)
    now = 0.0
    integral = 0.0
    depth = 0
    peak = 0
    accepted = popped = evictions = newcomer_rejects = 0
    for index, (kind, priority, deadline_ns, gap) in enumerate(ops):
        integral += depth * gap
        now += gap
        if kind == "offer":
            ok, evicted = station.offer(
                now, priority, (0, index), index, deadline_ns=deadline_ns
            )
            if ok:
                accepted += 1
                if evicted is not None:
                    evictions += 1       # net depth unchanged
                else:
                    depth += 1
            else:
                newcomer_rejects += 1
        else:
            shed, waiter = station.pop_live(now)
            depth -= len(shed)
            if waiter is not None:
                depth -= 1
                popped += 1
        peak = max(peak, depth)
        assert station.depth() == depth
        assert depth <= capacity
    # Conservation: nothing vanishes, nothing is double-counted.
    assert accepted == popped + station.shed + station.depth() + evictions
    assert station.rejected == newcomer_rejects + evictions
    # The depth integral is exact, not sampled.
    end = now + 10.0
    integral += depth * 10.0
    summary = station.summary(end, overload=True)
    assert abs(summary["mean_depth"] - integral / end) < 1e-9
    assert summary["max_depth"] == peak
    assert summary["shed"] == station.shed
