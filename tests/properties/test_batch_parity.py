"""Bit-identity of the batched sweep engine against the scalar oracle.

The batch engine (:mod:`repro.sweep.batch`) is a pure performance
strategy: grouping, broadcasting and vectorized folds may never change
a single bit of the canonical payload.  These properties drive random
:class:`~repro.sweep.SweepSpec` grids through ``engine="batch"`` and
compare canonical JSON (hence SHA-256 digests) against the serial
reference loop — including fault-seeded cells and other shapes the
batch path cannot express, which must *fall back* to the scalar oracle
per cell rather than drift.

Transfer grids use ``rates="paper"`` so Hypothesis can afford several
examples; the simulated-rates surface is covered by the slow-marked
calibration test at the bottom and by the speed benchmark's digest
cross-check.
"""

import dataclasses

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.sweep import NOMINAL_SEED, SweepSpec, run_serial, run_sweep
from repro.sweep.batch import run_cells_batched

PAIR_POOL = (
    ("1", "1"),
    ("1", "64"),
    ("64", "1"),
    ("1", "w"),
    ("w", "1"),
    ("w", "w"),
)

SLOW_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def transfer_specs(draw):
    """Small random transfer grids over the paper-rate calibration.

    The ``seeds`` axis deliberately includes fault seeds: seeded cells
    are outside the batch envelope and must take the per-cell fallback.
    """
    machines = draw(
        st.sampled_from([("t3d",), ("paragon",), ("t3d", "paragon")])
    )
    pairs = tuple(
        draw(
            st.lists(
                st.sampled_from(PAIR_POOL),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
    )
    styles = draw(
        st.sampled_from(
            [("buffer-packing",), ("chained",),
             ("buffer-packing", "chained")]
        )
    )
    sizes = tuple(
        draw(
            st.lists(
                st.sampled_from([4096, 8192, 65536]),
                min_size=1,
                max_size=2,
                unique=True,
            )
        )
    )
    seeds = draw(st.sampled_from([(), (NOMINAL_SEED, 3), (11,)]))
    return SweepSpec(
        machines=machines,
        pairs=pairs,
        styles=styles,
        sizes=sizes,
        seeds=seeds,
        rates="paper",
    )


class TestBatchBitIdentity:
    @SLOW_SETTINGS
    @given(spec=transfer_specs())
    def test_batch_engine_matches_serial_reference(self, spec):
        reference = run_serial(spec, batched=True)
        batched = run_sweep(spec, workers=1, engine="batch")
        assert batched.canonical_json() == reference.canonical_json()
        assert batched.digest() == reference.digest()

    @SLOW_SETTINGS
    @given(
        spec=transfer_specs(),
        workers=st.sampled_from([2, 3]),
        shard_size=st.integers(min_value=1, max_value=7),
    )
    def test_pooled_batch_matches_serial_reference(
        self, spec, workers, shard_size
    ):
        reference = run_serial(spec, batched=True)
        pooled = run_sweep(
            spec, workers=workers, shard_size=shard_size, engine="batch"
        )
        assert pooled.canonical_json() == reference.canonical_json()

    @SLOW_SETTINGS
    @given(spec=transfer_specs())
    def test_fault_seeded_cells_fall_back_not_drift(self, spec):
        """Every seeded cell must be counted as a fallback — the batch
        path never attempts fault-plan execution — and the merged
        payload must still match the reference bit for bit."""
        seeded = dataclasses.replace(spec, seeds=(NOMINAL_SEED, 3, 11))
        reference = run_serial(seeded, batched=True)
        batched = run_sweep(seeded, workers=1, engine="batch")
        assert batched.canonical_json() == reference.canonical_json()
        n_seeded = sum(
            1 for cell in batched.cells if cell.seed != NOMINAL_SEED
        )
        assert n_seeded > 0
        assert batched.stats["batch_fallbacks"] >= n_seeded


class TestFallbackEnvelope:
    def test_ambient_fault_plan_sends_everything_to_fallback(self):
        """An ambient fault plan (installed via ``injecting``) is
        outside the batch envelope wholesale: every cell falls back and
        the rows still match the scalar loop's exactly."""
        from repro.faults import FaultPlan, injecting

        spec = SweepSpec(
            machines=("t3d",),
            pairs=(("1", "64"),),
            styles=("chained",),
            sizes=(8192,),
            rates="paper",
            duplex="off",
        )
        cells = spec.expand()
        with injecting(FaultPlan.chaos(7)):
            reference = run_serial(spec, batched=True)
            report = run_cells_batched(cells)
        assert report.fallbacks == len(cells)
        assert tuple(report.rows) == reference.rows

    def test_failing_cell_raises_the_scalar_error(self):
        """A cell the scalar loop would refuse must abort the batch
        run with the same canonical SweepError, not a numpy artifact."""
        from repro.sweep import SweepError
        from repro.sweep.spec import SweepCell

        bad = SweepSpec(machines=("t3d",)).expand()[0].to_dict()
        bad["x"] = "not-a-pattern"
        cell = SweepCell.from_dict(bad)
        with pytest.raises(SweepError, match="failed"):
            run_cells_batched([cell])

    def test_batch_trace_counters_account_for_every_cell(self):
        from repro.trace import tracing

        spec = SweepSpec(
            machines=("t3d", "paragon"),
            pairs=(("1", "1"), ("w", "1")),
            sizes=(8192,),
            seeds=(NOMINAL_SEED, 5),
            rates="paper",
        )
        cells = spec.expand()
        with tracing() as tracer:
            report = run_cells_batched(cells)
        counters = tracer.metrics.counters()
        assert counters["batch.cells"] == len(cells)
        assert counters["batch.fallbacks"] == report.fallbacks
        assert counters["batch.groups"] == report.groups
        # Seeded cells fall back; nominal cells ride the vector path.
        assert 0 < report.fallbacks < len(cells)


@pytest.mark.slow
class TestSimulatedRatesParity:
    """The simulated-rates surfaces — where the memsim engine choice
    could in principle leak into grouping — stay bit-identical."""

    def test_calibration_grid_batch_vs_serial(self, monkeypatch):
        from repro.caching import CACHE_ENV
        from repro.sweep import calibration_spec

        monkeypatch.setenv(CACHE_ENV, "off")
        spec = dataclasses.replace(calibration_spec("t3d"), nwords=4096)
        reference = run_serial(spec, batched=True)
        batched = run_sweep(spec, workers=1, engine="batch")
        assert batched.canonical_json() == reference.canonical_json()

    def test_figure7_grid_batch_vs_serial(self):
        from repro.sweep import figure7_spec

        spec = figure7_spec()
        assert (
            run_sweep(spec, workers=1, engine="batch").digest()
            == run_serial(spec, batched=True).digest()
        )
