"""Cross-machine invariants: every registered machine, one harness.

The machine registry (:mod:`repro.machines.registry`) is the single
source of truth for what a "machine" is; these properties pin down
what every entry must satisfy, so adding a machine means passing this
file, not hand-porting assertions:

* model estimates are positive and finite for every feasible style;
* transfer time is monotone in payload size;
* the verifier's static interval (CT214's bracket) contains the
  model's own estimate;
* the sweep engines (scalar per-cell loop vs vectorized batch) produce
  bit-identical rows.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.analysis.verify.bounds import rate_interval
from repro.core.errors import ModelError
from repro.core.operations import OperationStyle
from repro.core.patterns import AccessPattern
from repro.machines.registry import MACHINE_FACTORIES, machine_names
from repro.runtime.engine import CommRuntime
from repro.sweep.spec import SweepSpec

ALL_MACHINES = machine_names()

# Paper-rate machines, models and runtimes are cheap to build but not
# free; share one per key across examples.
_machines = {}
_models = {}
_runtimes = {}


def _machine(key):
    if key not in _machines:
        _machines[key] = MACHINE_FACTORIES[key]()
    return _machines[key]


def _model(key):
    if key not in _models:
        _models[key] = _machine(key).model(source="paper")
    return _models[key]


def _runtime(key):
    if key not in _runtimes:
        _runtimes[key] = CommRuntime(_machine(key), rates="paper")
    return _runtimes[key]


#: Read/write access patterns every table can price (contiguous plus
#: power-of-two strides; arbitrary strides interpolate).
PATTERNS = st.sampled_from(["1", "2", "4", "8", "16", "64"])
STYLES = st.sampled_from([style for style in OperationStyle])


def _estimate(key, x, y, style):
    """Estimate xQy, skipping the example when the machine cannot
    build the style at all (e.g. no deposit engine for strided
    chained writes) — infeasibility is a capability fact, not a bug."""
    model = _model(key)
    try:
        expr = model.build(
            AccessPattern.parse(x), AccessPattern.parse(y), style
        )
    except ModelError:
        assume(False)
    return expr, model.estimate_expr(expr)


@pytest.mark.parametrize("key", ALL_MACHINES)
class TestEveryRegisteredMachine:
    @given(x=PATTERNS, y=PATTERNS, style=STYLES)
    @settings(max_examples=25, deadline=None)
    def test_estimates_positive_and_finite(self, key, x, y, style):
        __, estimate = _estimate(key, x, y, style)
        assert estimate.mbps > 0.0
        assert estimate.mbps < float("inf")

    @given(
        x=PATTERNS,
        y=PATTERNS,
        nbytes=st.integers(min_value=256, max_value=1 << 20),
    )
    @settings(max_examples=25, deadline=None)
    def test_transfer_time_monotone_in_size(self, key, x, y, nbytes):
        runtime = _runtime(key)
        read = AccessPattern.parse(x)
        write = AccessPattern.parse(y)
        style = OperationStyle.BUFFER_PACKING  # feasible everywhere
        small = runtime.transfer(read, write, nbytes, style=style)
        bigger = runtime.transfer(read, write, 2 * nbytes, style=style)
        assert bigger.ns > small.ns

    @given(x=PATTERNS, y=PATTERNS, style=STYLES)
    @settings(max_examples=25, deadline=None)
    def test_verify_interval_brackets_estimate(self, key, x, y, style):
        expr, estimate = _estimate(key, x, y, style)
        model = _model(key)
        interval = rate_interval(expr, model.table, model.constraints)
        assume(interval is not None)
        assert interval.contains(estimate.mbps)

    def test_sweep_engines_bit_identical(self, key):
        from repro.sweep.batch import run_cells_batched
        from repro.sweep.worker import run_cell

        spec = SweepSpec(
            kind="transfer",
            machines=(key,),
            pairs=(("1", "64"), ("1", "1")),
            styles=("buffer-packing",),
            sizes=(4096, 131072),
            rates="paper",
        )
        cells = spec.expand()
        scalar = [run_cell(cell) for cell in cells]
        batched = run_cells_batched(cells).rows
        assert scalar == list(batched)
