"""Property-based tests for the runtime and latency layers."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.latency import LatencyModel
from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, strided
from repro.machines import t3d
from repro.runtime.engine import CommRuntime

# One shared runtime: simulated tables are cached, transfers are fast.
_RUNTIME = CommRuntime(t3d())


class TestTransferProperties:
    @given(st.integers(min_value=64, max_value=1 << 22))
    @settings(max_examples=40, deadline=None)
    def test_time_monotone_in_size(self, nbytes):
        small = _RUNTIME.transfer(CONTIGUOUS, strided(64), nbytes)
        bigger = _RUNTIME.transfer(CONTIGUOUS, strided(64), 2 * nbytes)
        assert bigger.ns > small.ns

    @given(st.integers(min_value=64, max_value=1 << 22))
    @settings(max_examples=40, deadline=None)
    def test_throughput_bounded_by_wire(self, nbytes):
        result = _RUNTIME.transfer(CONTIGUOUS, CONTIGUOUS, nbytes, congestion=1)
        assert result.mbps <= _RUNTIME.machine.network.payload_data_mbps

    @given(
        st.floats(min_value=1.0, max_value=16.0),
        st.floats(min_value=1.0, max_value=16.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_congestion_monotone(self, c_low, c_high):
        low, high = sorted((c_low, c_high))
        fast = _RUNTIME.transfer(CONTIGUOUS, CONTIGUOUS, 1 << 20, congestion=low)
        slow = _RUNTIME.transfer(CONTIGUOUS, CONTIGUOUS, 1 << 20, congestion=high)
        assert slow.mbps <= fast.mbps * (1 + 1e-9)

    @given(st.integers(min_value=1024, max_value=1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_duplex_never_faster_than_simplex(self, nbytes):
        simplex = _RUNTIME.transfer(CONTIGUOUS, strided(64), nbytes, duplex=False)
        duplex = _RUNTIME.transfer(CONTIGUOUS, strided(64), nbytes, duplex=True)
        assert duplex.mbps <= simplex.mbps * (1 + 1e-9)

    @given(st.integers(min_value=64, max_value=1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_resource_busy_bounded_by_total(self, nbytes):
        result = _RUNTIME.transfer(
            CONTIGUOUS, strided(64), nbytes, OperationStyle.CHAINED
        )
        # No single resource is busier than the whole (pre-efficiency)
        # transfer takes; compare against the raw pipeline time.
        total_pipeline = sum(ns for __, ns in result.phase_ns)
        assert result.bottleneck_busy_ns() <= total_pipeline * (1 + 1e-6) + (
            _RUNTIME.library.per_message_ns
        )


class TestLatencyFitProperties:
    @given(
        st.floats(min_value=100.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=50)
    def test_fit_inverts_model(self, startup, bandwidth):
        truth = LatencyModel(startup_ns=startup, asymptotic_mbps=bandwidth)
        sizes = (256, 4096, 65536, 1 << 20)
        fitted = LatencyModel.fit((n, truth.throughput(n)) for n in sizes)
        assert fitted.asymptotic_mbps == pytest.approx(bandwidth, rel=1e-4)
        assert fitted.startup_ns == pytest.approx(startup, rel=1e-3, abs=1.0)

    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=500.0),
        st.integers(min_value=1, max_value=1 << 24),
    )
    @settings(max_examples=50)
    def test_throughput_below_asymptote(self, startup, bandwidth, nbytes):
        model = LatencyModel(startup_ns=startup, asymptotic_mbps=bandwidth)
        assert model.throughput(nbytes) <= bandwidth * (1 + 1e-12)
