"""The fast path is an exact twin of the scalar timeline oracle.

:class:`~repro.memsim.fastpath.FastEngine` exists purely for speed:
for every configuration it accepts, it must reproduce the scalar
:class:`~repro.memsim.engine.MemoryEngine` result field for field.
These properties drive both engines over random node configurations,
access patterns and stream lengths and demand agreement — times to a
relative 1e-9 (vectorized reductions reassociate float sums), hit
rates to 1e-12 (they are ratios of integers in both engines).

CI gates on this module: the job fails if these tests are skipped,
so the parity guarantee cannot silently rot.
"""

from dataclasses import replace

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core.patterns import AccessPattern
from repro.memsim.config import (
    CacheConfig,
    DepositConfig,
    DRAMConfig,
    NodeConfig,
    ProcessorConfig,
    ReadAheadConfig,
    WriteBufferConfig,
)
from repro.memsim.engine import MemoryEngine
from repro.memsim.fastpath import FastEngine, FastpathUnsupported
from repro.memsim.streams import make_stream

REL_NS = 1e-9
REL_RATE = 1e-12

#: Write stream base far above any read stream footprint.
WRITE_BASE = (1 << 24) + 256


def _close(a: float, b: float, rel: float) -> bool:
    return abs(a - b) <= rel * max(1.0, abs(a), abs(b))


def assert_results_match(ref, fast, tag: str) -> None:
    assert ref.nwords == fast.nwords, tag
    assert _close(ref.ns, fast.ns, REL_NS), (
        f"{tag}: ns {ref.ns!r} != {fast.ns!r}"
    )
    assert _close(ref.cache_hit_rate, fast.cache_hit_rate, REL_RATE), (
        f"{tag}: cache hit rate {ref.cache_hit_rate!r} != "
        f"{fast.cache_hit_rate!r}"
    )
    assert _close(
        ref.dram_page_hit_rate, fast.dram_page_hit_rate, REL_RATE
    ), (
        f"{tag}: page hit rate {ref.dram_page_hit_rate!r} != "
        f"{fast.dram_page_hit_rate!r}"
    )


# -- strategies ---------------------------------------------------------------

patterns = st.one_of(
    st.just(AccessPattern.contiguous()),
    st.just(AccessPattern.indexed()),
    st.sampled_from([2, 4, 8, 16, 64]).map(AccessPattern.strided),
    st.just(AccessPattern.strided(16, block=4)),
)

caches = st.builds(
    CacheConfig,
    size_bytes=st.sampled_from([1024, 4096, 8192]),
    line_bytes=st.sampled_from([16, 32, 64]),
    associativity=st.sampled_from([1, 2, 4]),
    hit_ns=st.sampled_from([5.0, 7.0]),
    write_policy=st.sampled_from(["around", "through"]),
)

drams = st.builds(
    DRAMConfig,
    page_bytes=st.sampled_from([512, 2048, 4096]),
    n_banks=st.sampled_from([1, 2, 4]),
    read_miss_ns=st.sampled_from([155.0, 240.0]),
    burst_word_ns=st.sampled_from([15.0, 25.0]),
)

write_buffers = st.builds(
    WriteBufferConfig,
    depth=st.sampled_from([0, 1, 2, 6, 12]),
    merge=st.booleans(),
)

read_aheads = st.builds(
    ReadAheadConfig,
    enabled=st.booleans(),
    depth=st.sampled_from([0, 1, 2, 4]),
    survives_writes=st.booleans(),
)

processors = st.builds(
    ProcessorConfig,
    clock_mhz=st.sampled_from([50.0, 150.0]),
    pipelined_load_depth=st.sampled_from([0, 1, 3]),
    pipelined_loads_bypass_cache=st.booleans(),
)

nodes = st.builds(
    NodeConfig,
    cache=caches,
    dram=drams,
    write_buffer=write_buffers,
    read_ahead=read_aheads,
    processor=processors,
)

lengths = st.sampled_from([1, 2, 3, 17, 256, 1023])

kernels = st.sampled_from(
    ["load", "store", "copy", "load_send", "receive_store", "deposit"]
)


def _engines(node: NodeConfig):
    """Both engines, rejecting configs outside the fastpath envelope.

    ``assume`` (not ``skip``): a skip inside a hypothesis body skips
    the whole test, and CI gates on these tests not skipping.
    """
    ref = MemoryEngine(node)
    try:
        fast = FastEngine(node)
    except FastpathUnsupported:
        assume(False)
    return ref, fast


class TestFastpathParity:
    @settings(max_examples=150, deadline=None)
    @given(
        node=nodes,
        pattern=patterns,
        nwords=lengths,
        kernel=kernels,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        index_run=st.sampled_from([1, 2, 4]),
    )
    def test_kernels_match_scalar_oracle(
        self, node, pattern, nwords, kernel, seed, index_run
    ):
        if kernel == "deposit":
            node = replace(
                node, deposit=DepositConfig(patterns="any")
            )
        ref, fast = _engines(node)
        read = make_stream(
            pattern, nwords, base=0, seed=seed, index_run=index_run
        )
        write = make_stream(
            pattern, nwords, base=WRITE_BASE, seed=seed + 1,
            index_run=index_run,
        )
        runs = {
            "load": lambda eng: eng.run_load_stream(read),
            "store": lambda eng: eng.run_store_stream(write),
            "copy": lambda eng: eng.run_copy(read, write),
            "load_send": lambda eng: eng.run_load_send(read),
            "receive_store": lambda eng: eng.run_receive_store(write),
            "deposit": lambda eng: eng.run_deposit(write),
        }
        run = runs[kernel]
        expected = run(ref)
        try:
            got = run(fast)
        except FastpathUnsupported:
            assume(False)
        assert_results_match(expected, got, f"{kernel}/{pattern!r}")

    @settings(max_examples=40, deadline=None)
    @given(
        node=nodes,
        read_pattern=patterns,
        write_pattern=patterns,
        nwords=lengths,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_mixed_pattern_copies_match(
        self, node, read_pattern, write_pattern, nwords, seed
    ):
        ref, fast = _engines(node)
        read = make_stream(read_pattern, nwords, base=0, seed=seed)
        write = make_stream(
            write_pattern, nwords, base=WRITE_BASE, seed=seed + 1
        )
        expected = ref.run_copy(read, write)
        try:
            got = fast.run_copy(read, write)
        except FastpathUnsupported:
            assume(False)
        assert_results_match(
            expected, got, f"copy {read_pattern!r}->{write_pattern!r}"
        )

    def test_machine_configs_are_inside_the_envelope(self):
        """The shipped machines must never fall back to the oracle."""
        from repro.machines import paragon, t3d

        for machine in (t3d(), paragon()):
            FastEngine(machine.node)  # must not raise
