"""Cross-layer integration tests.

These exercise the full stack the way a user would: compiler-generated
plans feed the model and the runtime; a brand-new machine defined as a
parameter set works everywhere; serialized calibrations reproduce
model results.
"""

import numpy as np
import pytest

from repro.compiler import Block, Cyclic, redistribute_1d, transpose_2d
from repro.core import (
    CommCapabilities,
    DepositSupport,
    OperationStyle,
    table_from_dict,
    table_to_dict,
)
from repro.core.model import CopyTransferModel
from repro.machines import Machine, RuntimeQuirks
from repro.machines.t3d import t3d_node_config
from repro.netsim.network import NetworkConfig
from repro.netsim.topology import Torus
from repro.runtime import CommRuntime, CommunicationStep, lowlevel_profile
from repro.runtime.engine import measure_q


class TestCompilerToModelToRuntime:
    def test_redistribution_end_to_end(self, t3d_machine):
        """block->cyclic: the compiler classifies, the model chooses
        chained, the runtime confirms chained is indeed faster."""
        plan = redistribute_1d(Block(1 << 14, 64), Cyclic(1 << 14, 64))
        dominant = plan.dominant_op()
        model = t3d_machine.model(source="paper")
        choice = model.choose(dominant.x, dominant.y)
        assert choice.style is OperationStyle.CHAINED

        nbytes = max(dominant.nbytes, 32 * 1024)
        measured = {
            style: measure_q(t3d_machine, dominant.x, dominant.y, nbytes, style).mbps
            for style in OperationStyle
        }
        assert (
            measured[OperationStyle.CHAINED]
            > measured[OperationStyle.BUFFER_PACKING]
        )

    def test_transpose_plan_through_collective_step(self, t3d_machine):
        plan = transpose_2d(512, 512, 64, element_words=2)
        dominant = plan.dominant_op()
        runtime = CommRuntime(t3d_machine, library=lowlevel_profile())
        step = CommunicationStep(
            runtime, plan.flows(), dominant.x, dominant.y, dominant.nbytes
        )
        result = step.run(OperationStyle.CHAINED)
        assert result.messages_per_node == 63
        assert 0 < result.per_node_mbps < 160

    def test_model_upper_bounds_runtime_across_grid(self, machine):
        """For every pattern pair the simulated-calibration model is an
        upper bound on the end-to-end measurement."""
        from repro.core.patterns import CONTIGUOUS, INDEXED, strided

        model = machine.model(source="simulated")
        for x in (CONTIGUOUS, strided(64), INDEXED):
            for y in (CONTIGUOUS, strided(64), INDEXED):
                for style in OperationStyle:
                    predicted = model.estimate(x, y, style).mbps
                    measured = measure_q(machine, x, y, 64 * 1024, style).mbps
                    assert measured <= predicted * 1.05, (
                        f"{x}Q{y} {style.value}: measured {measured:.1f} "
                        f"> model {predicted:.1f}"
                    )


def hypothetical_machine() -> Machine:
    """A third machine defined purely as data: a T3D-like node with a
    general deposit engine AND a DMA, on a small torus."""
    from repro.core.calibration import ThroughputTable
    from dataclasses import replace

    node = replace(t3d_node_config(), name="hypothetical-node",
                   dma=replace(t3d_node_config().dma, present=True))
    return Machine(
        name="Hypothetical",
        node=node,
        network=NetworkConfig(
            payload_data_mbps=200.0,
            payload_adp_mbps=100.0,
            port_sharing=1,
            default_congestion=2,
        ),
        topology_factory=lambda n: Torus(*([2] * max(1, n.bit_length() - 1)))
        if n & (n - 1) == 0
        else Torus(n),
        capabilities=CommCapabilities(
            deposit=DepositSupport.ANY,
            dma_send=True,
            coprocessor_receive=False,
        ),
        published=ThroughputTable("hypothetical (none published)"),
        quirks=RuntimeQuirks(),
        index_run=2,
    )


class TestThirdMachine:
    """DESIGN.md decision 4: adding a machine is one config."""

    @pytest.fixture(scope="class")
    def machine(self):
        return hypothetical_machine()

    def test_simulated_calibration_works(self, machine):
        table = machine.simulated_table(nwords=4096)
        assert len(table) > 10

    def test_model_works(self, machine):
        from repro.core.patterns import CONTIGUOUS, strided

        model = machine.model(source="simulated")
        choice = model.choose(CONTIGUOUS, strided(64))
        assert choice.mbps > 0

    def test_runtime_works(self, machine):
        from repro.core.patterns import INDEXED

        result = measure_q(
            machine, INDEXED, INDEXED, 32 * 1024, OperationStyle.CHAINED
        )
        assert result.mbps > 0

    def test_kernels_work(self, machine):
        from repro.apps import SORKernel

        report = SORKernel(machine, n=256, n_nodes=16).report()
        assert report.chained_measured_mbps > 0


class TestSerializationIntegration:
    def test_serialized_calibration_reproduces_model(self, t3d_machine):
        from repro.core.patterns import CONTIGUOUS, strided

        original = t3d_machine.model(source="paper")
        rebuilt_table = table_from_dict(table_to_dict(original.table))
        rebuilt = CopyTransferModel(
            table=rebuilt_table,
            capabilities=t3d_machine.capabilities,
            name="rebuilt",
        )
        for style in OperationStyle:
            assert rebuilt.estimate(CONTIGUOUS, strided(64), style).mbps == (
                pytest.approx(
                    original.estimate(CONTIGUOUS, strided(64), style).mbps
                )
            )
