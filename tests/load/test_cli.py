"""The ``python -m repro load`` subcommand and seeds validation."""

import json

from repro.__main__ import main
from repro.load import validate_load_report


class TestLoadCommand:
    def test_human_output(self, capsys):
        assert main(["load", "--seed", "7", "--duration", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p99" in out and "p999" in out
        assert "events/s" in out
        assert "digest" in out

    def test_json_payload_validates(self, capsys):
        assert main([
            "load", "--seed", "7", "--duration", "0.005", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        digest = payload.pop("digest")
        assert len(digest) == 64
        assert validate_load_report(payload) == []

    def test_json_replays_bit_identically(self, capsys):
        argv = ["load", "--seed", "7", "--duration", "0.005", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--workers", "4"]) == 0
        again = capsys.readouterr().out
        assert first == again

    def test_chaos_seed_composes_faults(self, capsys):
        argv = ["load", "--seed", "7", "--duration", "0.005", "--json"]
        assert main(argv) == 0
        healthy = json.loads(capsys.readouterr().out)
        assert main(argv + ["--chaos-seed", "7"]) == 0
        chaotic = json.loads(capsys.readouterr().out)
        assert healthy["faults"] is None
        assert chaotic["faults"]["seed"] == 7
        assert (
            chaotic["latency_ns"]["p99"] > healthy["latency_ns"]["p99"]
        )

    def test_profile_and_machine_overrides(self, capsys):
        assert main([
            "load", "--profile", "closed", "--machine", "paragon",
            "--nodes", "4", "--duration", "0.005", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "paragon"
        assert payload["profile"]["nodes"] == 4

    def test_unknown_profile_is_one_line_error(self, capsys):
        assert main(["load", "--profile", "nope"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_nonpositive_duration_is_one_line_error(self, capsys):
        assert main(["load", "--duration", "0"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_too_few_nodes_is_one_line_error(self, capsys):
        assert main(["load", "--nodes", "1", "--duration", "0.005"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_malformed_plan_is_one_line_error(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text("{not json")
        assert main([
            "load", "--duration", "0.005", "--plan", str(plan),
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_missing_plan_file_is_one_line_error(self, capsys, tmp_path):
        assert main([
            "load", "--duration", "0.005",
            "--plan", str(tmp_path / "absent.json"),
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1


class TestOverloadFlags:
    def test_protected_report_carries_overload_section(self, capsys):
        assert main([
            "load", "--seed", "7", "--duration", "0.005",
            "--rate-x", "3.2", "--admission", "bounded-queue",
            "--queue-limit", "16", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        payload.pop("digest")
        assert validate_load_report(payload) == []
        section = payload["overload"]
        assert section["spec"]["admission"] == "bounded-queue"
        assert section["totals"]["rejected"] > 0

    def test_invalid_spec_combination_is_one_line_error(self, capsys):
        # token-bucket admission without a rate is a spec error.
        assert main([
            "load", "--duration", "0.005", "--admission", "token-bucket",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_human_output_mentions_protection(self, capsys):
        assert main([
            "load", "--seed", "7", "--duration", "0.005",
            "--rate-x", "3.2", "--admission", "bounded-queue",
            "--queue-limit", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "overload" in out


class TestLatencyCurve:
    def test_curve_json_replays_across_workers(self, capsys):
        argv = [
            "load", "--seed", "7", "--duration", "0.005",
            "--latency-curve", "0.5,1,2", "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--workers", "3"]) == 0
        assert first == capsys.readouterr().out
        payload = json.loads(first)
        assert payload["schema"] == "repro-load-curve/1"
        assert [p["multiplier"] for p in payload["points"]] == [0.5, 1.0, 2.0]

    def test_curve_human_output_tabulates_points(self, capsys):
        assert main([
            "load", "--seed", "7", "--duration", "0.005",
            "--latency-curve", "1,2",
        ]) == 0
        out = capsys.readouterr().out
        assert "p99" in out and "digest" in out

    def test_bad_curve_multipliers_are_one_line_errors(self, capsys):
        for flags in (["--latency-curve", "abc"],
                      ["--latency-curve", "2,1"],
                      ["--latency-curve", "0"]):
            assert main(["load", "--duration", "0.005"] + flags) == 1
            err = capsys.readouterr().err
            assert err.startswith("error: ")
            assert len(err.strip().splitlines()) == 1


class TestSeedsValidation:
    def test_faults_rejects_duplicate_seeds(self, capsys):
        assert main(["faults", "--seeds", "3", "4", "3"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "duplicate" in err
        assert len(err.strip().splitlines()) == 1

    def test_faults_rejects_negative_seeds(self, capsys):
        assert main(["faults", "--seeds", "-2", "4"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "-2" in err

    def test_sweep_rejects_duplicate_seeds(self, capsys):
        assert main([
            "sweep", "--grid", "figure7", "--seeds", "5", "5",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "duplicate" in err

    def test_sweep_rejects_negative_seeds(self, capsys):
        assert main([
            "sweep", "--grid", "figure7", "--seeds", "-1",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")

    def test_valid_seed_population_still_runs(self, capsys):
        assert main([
            "faults", "--seeds", "3", "4", "--bytes", "8192", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["seed"] for row in payload["seeds"]] == [3, 4]
