"""The ``python -m repro load`` subcommand and seeds validation."""

import json

from repro.__main__ import main
from repro.load import validate_load_report


class TestLoadCommand:
    def test_human_output(self, capsys):
        assert main(["load", "--seed", "7", "--duration", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p99" in out and "p999" in out
        assert "events/s" in out
        assert "digest" in out

    def test_json_payload_validates(self, capsys):
        assert main([
            "load", "--seed", "7", "--duration", "0.005", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        digest = payload.pop("digest")
        assert len(digest) == 64
        assert validate_load_report(payload) == []

    def test_json_replays_bit_identically(self, capsys):
        argv = ["load", "--seed", "7", "--duration", "0.005", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--workers", "4"]) == 0
        again = capsys.readouterr().out
        assert first == again

    def test_chaos_seed_composes_faults(self, capsys):
        argv = ["load", "--seed", "7", "--duration", "0.005", "--json"]
        assert main(argv) == 0
        healthy = json.loads(capsys.readouterr().out)
        assert main(argv + ["--chaos-seed", "7"]) == 0
        chaotic = json.loads(capsys.readouterr().out)
        assert healthy["faults"] is None
        assert chaotic["faults"]["seed"] == 7
        assert (
            chaotic["latency_ns"]["p99"] > healthy["latency_ns"]["p99"]
        )

    def test_profile_and_machine_overrides(self, capsys):
        assert main([
            "load", "--profile", "closed", "--machine", "paragon",
            "--nodes", "4", "--duration", "0.005", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "paragon"
        assert payload["profile"]["nodes"] == 4

    def test_unknown_profile_is_one_line_error(self, capsys):
        assert main(["load", "--profile", "nope"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1


class TestSeedsValidation:
    def test_faults_rejects_duplicate_seeds(self, capsys):
        assert main(["faults", "--seeds", "3", "4", "3"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "duplicate" in err
        assert len(err.strip().splitlines()) == 1

    def test_faults_rejects_negative_seeds(self, capsys):
        assert main(["faults", "--seeds", "-2", "4"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "-2" in err

    def test_sweep_rejects_duplicate_seeds(self, capsys):
        assert main([
            "sweep", "--grid", "figure7", "--seeds", "5", "5",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "duplicate" in err

    def test_sweep_rejects_negative_seeds(self, capsys):
        assert main([
            "sweep", "--grid", "figure7", "--seeds", "-1",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")

    def test_valid_seed_population_still_runs(self, capsys):
        assert main([
            "faults", "--seeds", "3", "4", "--bytes", "8192", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["seed"] for row in payload["seeds"]] == [3, 4]
