"""Workload specs: validation, serialization, deterministic draws."""

import math

import pytest

from repro.core.errors import ModelError
from repro.load import (
    PROFILES,
    ClosedLoopSpec,
    LoadProfile,
    OpenLoopSpec,
    RequestTemplate,
    profile_by_name,
    uniform,
)


class TestUniform:
    def test_pure_function_of_seed_and_key(self):
        assert uniform(7, "a", 1) == uniform(7, "a", 1)
        assert uniform(7, "a", 1) != uniform(7, "a", 2)
        assert uniform(7, "a", 1) != uniform(8, "a", 1)

    def test_range(self):
        for draw in range(50):
            value = uniform(3, "range", draw)
            assert 0.0 <= value < 1.0


class TestSpecs:
    def test_template_rejects_nonpositive_bytes(self):
        with pytest.raises(ModelError):
            RequestTemplate("bad", nbytes=0)

    def test_open_loop_rejects_bad_rate_and_burst(self):
        template = (RequestTemplate("t"),)
        with pytest.raises(ModelError):
            OpenLoopSpec("g", rate_per_s=0.0, templates=template)
        with pytest.raises(ModelError):
            OpenLoopSpec("g", rate_per_s=10.0, burst=0, templates=template)

    def test_closed_loop_rejects_bad_clients_and_think(self):
        template = (RequestTemplate("t"),)
        with pytest.raises(ModelError):
            ClosedLoopSpec("g", clients=0, templates=template)
        with pytest.raises(ModelError):
            ClosedLoopSpec("g", clients=1, think_ns=-1.0, templates=template)

    def test_profile_needs_generators_and_nodes(self):
        with pytest.raises(ModelError):
            LoadProfile(name="empty")
        with pytest.raises(ModelError):
            LoadProfile(
                name="tiny",
                nodes=1,
                open_loops=(OpenLoopSpec("g", rate_per_s=1.0),),
            )

    def test_profile_rejects_duplicate_generator_names(self):
        with pytest.raises(ModelError):
            LoadProfile(
                name="dup",
                open_loops=(OpenLoopSpec("g", rate_per_s=1.0),),
                closed_loops=(ClosedLoopSpec("g", clients=1),),
            )

    def test_profile_rejects_unknown_discipline(self):
        with pytest.raises(ModelError):
            LoadProfile(
                name="bad",
                discipline="lifo",
                open_loops=(OpenLoopSpec("g", rate_per_s=1.0),),
            )


class TestArrivals:
    def test_stream_is_reproducible_and_sorted(self):
        spec = OpenLoopSpec("g", rate_per_s=50_000.0)
        first = list(spec.arrivals(seed=7, horizon_ns=1e6))
        again = list(spec.arrivals(seed=7, horizon_ns=1e6))
        assert first == again
        times = [time_ns for time_ns, __ in first]
        assert times == sorted(times)
        assert all(time_ns < 1e6 for time_ns in times)

    def test_mean_gap_tracks_rate(self):
        spec = OpenLoopSpec("g", rate_per_s=100_000.0)
        times = [t for t, __ in spec.arrivals(seed=3, horizon_ns=1e9)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert math.isclose(mean, 1e9 / 100_000.0, rel_tol=0.1)

    def test_burst_multiplies_requests_per_arrival(self):
        plain = OpenLoopSpec("g", rate_per_s=10_000.0)
        bursty = OpenLoopSpec("g", rate_per_s=10_000.0, burst=4)
        n_plain = len(list(plain.arrivals(seed=7, horizon_ns=1e7)))
        n_bursty = len(list(bursty.arrivals(seed=7, horizon_ns=1e7)))
        assert n_bursty == 4 * n_plain


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_profiles_round_trip(self, name):
        profile = profile_by_name(name)
        assert LoadProfile.from_dict(profile.to_dict()) == profile

    def test_unknown_profile_is_model_error(self):
        with pytest.raises(ModelError):
            profile_by_name("nope")
