"""The traffic engine: conservation, replay, faults, report shape."""

import pytest

from repro.core.errors import ModelError
from repro.faults import FaultPlan
from repro.load import (
    ClosedLoopSpec,
    LoadEngine,
    LoadProfile,
    OpenLoopSpec,
    RequestTemplate,
    profile_by_name,
    validate_load_report,
)

_HORIZON = 10_000_000.0  # 10 ms of simulated traffic


def _steady():
    return profile_by_name("steady")


class TestConservation:
    def test_every_offered_request_completes(self):
        result = LoadEngine(_steady(), seed=7).run(_HORIZON)
        assert result.offered > 0
        assert result.completed == result.offered

    def test_served_counts_match_completions(self):
        result = LoadEngine(_steady(), seed=7).run(_HORIZON)
        nic_served = sum(
            summary["served"]
            for name, summary in result.stations.items()
            if name.endswith("/nic")
        )
        assert nic_served == result.completed

    def test_drain_runs_past_horizon(self):
        result = LoadEngine(_steady(), seed=7).run(_HORIZON)
        assert result.end_ns >= 0.0
        assert result.latency["count"] == result.completed


class TestReplay:
    @pytest.mark.parametrize("name", ("steady", "bursty", "closed"))
    def test_same_seed_is_bit_identical(self, name):
        profile = profile_by_name(name)
        first = LoadEngine(profile, seed=7).run(_HORIZON)
        again = LoadEngine(profile, seed=7).run(_HORIZON)
        assert first.canonical_json() == again.canonical_json()
        assert first.digest() == again.digest()

    def test_different_seeds_differ(self):
        first = LoadEngine(_steady(), seed=7).run(_HORIZON)
        other = LoadEngine(_steady(), seed=8).run(_HORIZON)
        assert first.digest() != other.digest()

    def test_workers_do_not_change_the_payload(self):
        profile = LoadProfile(
            name="multi",
            open_loops=tuple(
                OpenLoopSpec(
                    name=f"gen{index}",
                    rate_per_s=2000.0,
                    templates=(RequestTemplate(f"t{index}", nbytes=4096),),
                )
                for index in range(5)
            ),
        )
        serial = LoadEngine(profile, seed=7).run(_HORIZON, workers=1)
        threaded = LoadEngine(profile, seed=7).run(_HORIZON, workers=4)
        assert serial.canonical_json() == threaded.canonical_json()

    def test_negative_seed_rejected(self):
        with pytest.raises(ModelError):
            LoadEngine(_steady(), seed=-1)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ModelError):
            LoadEngine(_steady(), seed=7).run(0.0)


class TestFaults:
    def test_chaos_plan_degrades_the_tail(self):
        healthy = LoadEngine(_steady(), seed=7).run(_HORIZON)
        chaotic = LoadEngine(
            _steady(), seed=7, faults=FaultPlan.chaos(7)
        ).run(_HORIZON)
        assert chaotic.latency["p99"] > healthy.latency["p99"]

    def test_empty_plan_is_bit_identical_to_none(self):
        healthy = LoadEngine(_steady(), seed=7).run(_HORIZON)
        empty = LoadEngine(
            _steady(), seed=7, faults=FaultPlan(seed=7)
        ).run(_HORIZON)
        assert healthy.canonical_json() == empty.canonical_json()

    def test_plan_is_embedded_in_the_report(self):
        plan = FaultPlan.chaos(11)
        result = LoadEngine(_steady(), seed=7, faults=plan).run(_HORIZON)
        payload = result.to_dict()
        assert payload["faults"] == plan.to_dict()
        assert validate_load_report(payload) == []


class TestBackpressure:
    def test_overload_builds_queues(self):
        hot = LoadProfile(
            name="hot",
            open_loops=(
                OpenLoopSpec(
                    name="flood",
                    rate_per_s=100_000.0,
                    templates=(RequestTemplate("big", y="64", nbytes=65536),),
                ),
            ),
        )
        result = LoadEngine(hot, seed=7).run(_HORIZON)
        max_depth = max(
            summary["max_depth"] for summary in result.stations.values()
        )
        assert max_depth > 1
        # The generator's home-node NIC is the bottleneck: it tops out.
        hottest = max(
            summary["utilization"]
            for name, summary in result.stations.items()
            if name.endswith("/nic")
        )
        assert hottest > 0.9

    def test_closed_loop_self_limits(self):
        profile = LoadProfile(
            name="closed1",
            closed_loops=(
                ClosedLoopSpec(
                    name="c",
                    clients=1,
                    think_ns=0.0,
                    templates=(RequestTemplate("t", nbytes=2048),),
                ),
            ),
        )
        result = LoadEngine(profile, seed=7).run(_HORIZON)
        # One client, zero think: exactly one request in flight at a
        # time, so no queue ever forms.
        assert all(
            summary["max_depth"] == 0
            for summary in result.stations.values()
        )
        assert result.completed == result.offered > 0


class TestReport:
    def test_payload_validates(self):
        payload = LoadEngine(_steady(), seed=7).run(_HORIZON).to_dict()
        assert validate_load_report(payload) == []

    def test_validator_catches_damage(self):
        payload = LoadEngine(_steady(), seed=7).run(_HORIZON).to_dict()
        payload["schema"] = "bogus"
        payload["latency_ns"]["p50"] = -1.0
        del payload["offered"]
        errors = validate_load_report(payload)
        assert any("schema" in error for error in errors)
        assert any("p50" in error for error in errors)
        assert any("offered" in error for error in errors)

    def test_profile_in_payload_replays(self):
        payload = LoadEngine(_steady(), seed=7).run(_HORIZON).to_dict()
        rebuilt = LoadProfile.from_dict(payload["profile"])
        again = LoadEngine(rebuilt, seed=payload["seed"]).run(
            payload["duration_ns"]
        )
        assert again.to_dict() == payload

    def test_stats_are_not_canonical(self):
        result = LoadEngine(_steady(), seed=7).run(_HORIZON)
        assert "events" in result.stats
        assert "stats" not in result.to_dict()
        assert "events" not in result.to_dict()
