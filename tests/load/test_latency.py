"""LatencyStore: nearest-rank percentiles, tail ordering."""

import pytest

from repro.load import LatencyStore


class TestPercentiles:
    def test_empty_store_reports_zeros(self):
        summary = LatencyStore().summary()
        assert summary["count"] == 0
        assert summary["p50"] == summary["p99"] == summary["p999"] == 0.0

    def test_single_sample_is_every_percentile(self):
        store = LatencyStore()
        store.record(42.0)
        summary = store.summary()
        assert summary["p50"] == summary["p99"] == summary["p999"] == 42.0
        assert summary["min"] == summary["max"] == 42.0

    def test_nearest_rank_matches_metrics_registry(self):
        from repro.trace.metrics import MetricsRegistry

        values = [float(value) for value in range(1, 101)]
        store = LatencyStore()
        registry = MetricsRegistry()
        for value in values:
            store.record(value)
            registry.observe("h", value)
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert store.percentile(q) == registry.percentile("h", q)

    def test_percentiles_are_observed_values_and_ordered(self):
        store = LatencyStore()
        for value in (5.0, 1.0, 9.0, 3.0, 7.0):
            store.record(value)
        summary = store.summary()
        assert summary["p50"] in (1.0, 3.0, 5.0, 7.0, 9.0)
        assert (
            summary["min"] <= summary["p50"] <= summary["p99"]
            <= summary["p999"] <= summary["max"]
        )

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyStore().percentile(101.0)

    def test_empty_percentile_raises_load_error(self):
        from repro.core.errors import LoadError

        with pytest.raises(LoadError):
            LatencyStore().percentile(50.0)

    def test_range_check_precedes_empty_check(self):
        # A bad q is a caller bug (ValueError) even on an empty store.
        with pytest.raises(ValueError):
            LatencyStore().percentile(-1.0)

    def test_records_after_summary_are_included(self):
        store = LatencyStore()
        store.record(1.0)
        assert store.percentile(100.0) == 1.0
        store.record(2.0)
        assert store.percentile(100.0) == 2.0
        assert len(store) == 2
