"""Circuit breaker state machine and board, in isolation.

The engine tests in ``test_overload.py`` exercise breakers end to end
(under a lossy fault plan); here the three-state machine itself is
pinned — trip threshold, cooldown, probe bookkeeping, and the board's
interesting-links-only summary.
"""

from repro.load.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)


def _tripped(threshold=3, cooldown_ns=1_000.0, probes=1):
    """A breaker driven CLOSED -> OPEN at t=0."""
    breaker = CircuitBreaker(threshold, cooldown_ns, probes)
    for __ in range(threshold):
        breaker.record_failure(0.0)
    assert breaker.state == OPEN
    return breaker


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        breaker = CircuitBreaker(3, 1_000.0, 1)
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)
        assert breaker.rejected == 0
        assert not breaker.interesting()

    def test_failures_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(3, 1_000.0, 1)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state == CLOSED
        assert breaker.failures == 2

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(3, 1_000.0, 1)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == CLOSED       # streak restarted at 1

    def test_threshold_trips_open_and_rejects(self):
        breaker = _tripped()
        assert breaker.opened == 1
        assert not breaker.allow(500.0)      # still cooling down
        assert breaker.rejected == 1

    def test_cooldown_elapses_into_half_open_probe(self):
        breaker = _tripped(cooldown_ns=1_000.0, probes=1)
        assert breaker.allow(1_000.0)        # first post-cooldown probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(1_001.0)    # probe slot taken
        assert breaker.rejected == 1

    def test_probe_successes_close(self):
        breaker = _tripped(probes=2)
        assert breaker.allow(1_000.0)
        assert breaker.allow(1_001.0)
        breaker.record_success(1_100.0)
        assert breaker.state == HALF_OPEN    # one of two
        breaker.record_success(1_101.0)
        assert breaker.state == CLOSED
        assert breaker.allow(1_200.0)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = _tripped(cooldown_ns=1_000.0)
        assert breaker.allow(1_000.0)
        breaker.record_failure(1_050.0)
        assert breaker.state == OPEN
        assert breaker.opened == 2
        assert not breaker.allow(1_500.0)    # new cooldown from 1050
        assert breaker.allow(2_050.0)        # elapsed again -> probe

    def test_transitions_record_the_timeline(self):
        breaker = _tripped(cooldown_ns=1_000.0)
        breaker.allow(1_000.0)
        breaker.record_success(1_100.0)
        assert [state for __, state in breaker.transitions] == [
            OPEN, HALF_OPEN, CLOSED,
        ]
        at = [at_ns for at_ns, __ in breaker.transitions]
        assert at == sorted(at)

    def test_summary_shape(self):
        summary = _tripped().summary()
        assert summary["state"] == OPEN
        assert summary["opened"] == 1
        assert summary["transitions"] == [{"at_ns": 0.0, "state": OPEN}]


class TestBreakerBoard:
    def test_get_is_lazy_and_per_link(self):
        board = BreakerBoard(3, 1_000.0, 1)
        first = board.get(0, 1)
        assert board.get(0, 1) is first
        assert board.get(1, 0) is not first

    def test_summary_lists_only_interesting_links(self):
        board = BreakerBoard(1, 1_000.0, 1)
        board.get(0, 1)                      # touched, never failed
        board.get(2, 3).record_failure(5.0)  # tripped
        summary = board.summary()
        assert list(summary) == ["2->3"]
        assert summary["2->3"]["state"] == OPEN

    def test_summary_is_sorted_by_link(self):
        board = BreakerBoard(1, 1_000.0, 1)
        for src, dst in ((3, 1), (0, 2), (3, 0)):
            board.get(src, dst).record_failure(0.0)
        assert list(board.summary()) == ["0->2", "3->0", "3->1"]
