"""Station semantics: disciplines, accounting, exact integrals."""

from repro.load import Station


class TestDisciplines:
    def test_fifo_serves_in_arrival_order(self):
        station = Station("s", "fifo")
        station.enqueue(0.0, priority=5, identity=(0, 0), payload="first")
        station.enqueue(1.0, priority=0, identity=(0, 1), payload="second")
        assert station.pop(2.0)[1] == "first"
        assert station.pop(2.0)[1] == "second"

    def test_priority_orders_by_priority_then_arrival(self):
        station = Station("s", "priority")
        station.enqueue(0.0, priority=1, identity=(0, 0), payload="bulk")
        station.enqueue(1.0, priority=0, identity=(0, 1), payload="urgent")
        station.enqueue(2.0, priority=0, identity=(0, 2), payload="urgent2")
        assert station.pop(3.0)[1] == "urgent"
        assert station.pop(3.0)[1] == "urgent2"
        assert station.pop(3.0)[1] == "bulk"

    def test_equal_keys_break_on_identity(self):
        station = Station("s", "priority")
        station.enqueue(0.0, priority=0, identity=(1, 9), payload="b")
        station.enqueue(0.0, priority=0, identity=(0, 3), payload="a")
        assert station.pop(1.0)[1] == "a"

    def test_pop_empty_returns_none(self):
        assert Station("s").pop(0.0) is None


class TestAccounting:
    def test_busy_and_served(self):
        station = Station("s")
        assert station.idle
        done = station.start(10.0, 5.0)
        assert done == 15.0
        assert not station.idle
        station.release()
        station.start(20.0, 5.0)
        station.release()
        summary = station.summary(100.0)
        assert summary["served"] == 2
        assert summary["busy_ns"] == 10.0
        assert summary["utilization"] == 0.1

    def test_depth_integral_is_exact(self):
        station = Station("s")
        # One waiter for [0, 10), two for [10, 20), none after.
        station.enqueue(0.0, 0, (0, 0), "a")
        station.enqueue(10.0, 0, (0, 1), "b")
        station.pop(20.0)
        station.pop(20.0)
        summary = station.summary(40.0)
        # Integral: 1*10 + 2*10 = 30 over 40 ns.
        assert summary["mean_depth"] == 30.0 / 40.0
        assert summary["max_depth"] == 2

    def test_backlog_counts_queue_plus_server(self):
        station = Station("s")
        assert station.backlog() == 0
        station.start(0.0, 1.0)
        station.enqueue(0.0, 0, (0, 0), "a")
        assert station.backlog() == 2
