"""Station semantics: disciplines, accounting, exact integrals."""

from repro.load import Station


class TestDisciplines:
    def test_fifo_serves_in_arrival_order(self):
        station = Station("s", "fifo")
        station.enqueue(0.0, priority=5, identity=(0, 0), payload="first")
        station.enqueue(1.0, priority=0, identity=(0, 1), payload="second")
        assert station.pop(2.0)[1] == "first"
        assert station.pop(2.0)[1] == "second"

    def test_priority_orders_by_priority_then_arrival(self):
        station = Station("s", "priority")
        station.enqueue(0.0, priority=1, identity=(0, 0), payload="bulk")
        station.enqueue(1.0, priority=0, identity=(0, 1), payload="urgent")
        station.enqueue(2.0, priority=0, identity=(0, 2), payload="urgent2")
        assert station.pop(3.0)[1] == "urgent"
        assert station.pop(3.0)[1] == "urgent2"
        assert station.pop(3.0)[1] == "bulk"

    def test_equal_keys_break_on_identity(self):
        station = Station("s", "priority")
        station.enqueue(0.0, priority=0, identity=(1, 9), payload="b")
        station.enqueue(0.0, priority=0, identity=(0, 3), payload="a")
        assert station.pop(1.0)[1] == "a"

    def test_pop_empty_returns_none(self):
        assert Station("s").pop(0.0) is None


class TestAccounting:
    def test_busy_and_served(self):
        station = Station("s")
        assert station.idle
        done = station.start(10.0, 5.0)
        assert done == 15.0
        assert not station.idle
        station.release()
        station.start(20.0, 5.0)
        station.release()
        summary = station.summary(100.0)
        assert summary["served"] == 2
        assert summary["busy_ns"] == 10.0
        assert summary["utilization"] == 0.1

    def test_depth_integral_is_exact(self):
        station = Station("s")
        # One waiter for [0, 10), two for [10, 20), none after.
        station.enqueue(0.0, 0, (0, 0), "a")
        station.enqueue(10.0, 0, (0, 1), "b")
        station.pop(20.0)
        station.pop(20.0)
        summary = station.summary(40.0)
        # Integral: 1*10 + 2*10 = 30 over 40 ns.
        assert summary["mean_depth"] == 30.0 / 40.0
        assert summary["max_depth"] == 2

    def test_backlog_counts_queue_plus_server(self):
        station = Station("s")
        assert station.backlog() == 0
        station.start(0.0, 1.0)
        station.enqueue(0.0, 0, (0, 0), "a")
        assert station.backlog() == 2


class TestBoundedOffer:
    def test_unbounded_offer_always_accepts(self):
        station = Station("s")
        for index in range(100):
            accepted, evicted = station.offer(0.0, 0, (0, index), index)
            assert accepted and evicted is None
        assert station.rejected == 0

    def test_fifo_rejects_newcomer_at_capacity(self):
        station = Station("s", "fifo", capacity=2)
        assert station.offer(0.0, 0, (0, 0), "a")[0]
        assert station.offer(1.0, 0, (0, 1), "b")[0]
        accepted, evicted = station.offer(2.0, 0, (0, 2), "c")
        assert not accepted and evicted is None
        assert station.rejected == 1
        # The line is untouched: still a then b.
        assert station.pop(3.0)[1] == "a"
        assert station.pop(3.0)[1] == "b"

    def test_priority_evicts_the_worst_waiter(self):
        station = Station("s", "priority", capacity=2)
        station.offer(0.0, 5, (0, 0), "bulk")
        station.offer(1.0, 0, (0, 1), "urgent")
        accepted, evicted = station.offer(2.0, 0, (0, 2), "urgent2")
        assert accepted
        assert evicted == "bulk"             # lowest priority shed first
        assert station.rejected == 1
        assert station.pop(3.0)[1] == "urgent"
        assert station.pop(3.0)[1] == "urgent2"

    def test_priority_rejects_newcomer_no_better_than_worst(self):
        station = Station("s", "priority", capacity=1)
        station.offer(0.0, 1, (0, 0), "earlier")
        accepted, evicted = station.offer(1.0, 1, (0, 1), "later")
        assert not accepted and evicted is None
        assert station.pop(2.0)[1] == "earlier"

    def test_capacity_bounds_the_waiting_line_not_the_server(self):
        station = Station("s", "fifo", capacity=1)
        station.start(0.0, 10.0)             # server busy
        assert station.offer(0.0, 0, (0, 0), "a")[0]
        assert not station.offer(1.0, 0, (0, 1), "b")[0]


class TestDeadlineShedding:
    def test_pop_live_sheds_expired_then_serves(self):
        station = Station("s")
        station.offer(0.0, 0, (0, 0), "stale", deadline_ns=5.0)
        station.offer(0.0, 0, (0, 1), "fresh", deadline_ns=100.0)
        shed, waiter = station.pop_live(10.0)
        assert shed == ["stale"]
        assert waiter[1] == "fresh"
        assert station.shed == 1
        assert station.shed_wait_ns == 10.0

    def test_pop_live_without_deadline_never_sheds(self):
        station = Station("s")
        station.offer(0.0, 0, (0, 0), "a")   # deadline 0.0 = none
        shed, waiter = station.pop_live(1e12)
        assert shed == [] and waiter[1] == "a"

    def test_pop_live_all_expired_returns_none(self):
        station = Station("s")
        station.offer(0.0, 0, (0, 0), "a", deadline_ns=1.0)
        station.offer(0.0, 0, (0, 1), "b", deadline_ns=2.0)
        shed, waiter = station.pop_live(10.0)
        assert shed == ["a", "b"] and waiter is None
        assert station.shed == 2
        assert station.shed_wait_ns == 20.0

    def test_pop_live_empty_queue(self):
        assert Station("s").pop_live(5.0) == ([], None)

    def test_exact_deadline_is_still_live(self):
        station = Station("s")
        station.offer(0.0, 0, (0, 0), "a", deadline_ns=10.0)
        shed, waiter = station.pop_live(10.0)   # wait == deadline: live
        assert shed == [] and waiter[1] == "a"


class TestBoundedAccounting:
    def test_depth_integral_spans_offer_evict_and_shed(self):
        station = Station("s", "priority", capacity=2)
        # Two waiters for [0, 10): depth integral 2*10.
        station.offer(0.0, 5, (0, 0), "bulk", deadline_ns=12.0)
        station.offer(0.0, 3, (0, 1), "mid", deadline_ns=100.0)
        # Eviction at t=10 replaces bulk; depth stays 2 for [10, 20).
        accepted, evicted = station.offer(10.0, 0, (0, 2), "hot")
        assert accepted and evicted == "bulk"
        # At t=20 nothing expires; pop hot, then mid.
        shed, waiter = station.pop_live(20.0)
        assert shed == [] and waiter[1] == "hot"
        shed, waiter = station.pop_live(20.0)
        assert shed == [] and waiter[1] == "mid"
        summary = station.summary(40.0, overload=True)
        # Integral: 2*10 + 2*10 + 1*0 = 40 over 40 ns.
        assert summary["mean_depth"] == 40.0 / 40.0
        assert summary["rejected"] == 1
        assert summary["shed"] == 0

    def test_summary_hides_bounded_tallies_unless_overload(self):
        station = Station("s", "fifo", capacity=1)
        station.offer(0.0, 0, (0, 0), "a")
        station.offer(1.0, 0, (0, 1), "b")
        plain = station.summary(10.0)
        assert "rejected" not in plain and "shed" not in plain
        full = Station("s", "fifo", capacity=1)
        full.offer(0.0, 0, (0, 0), "a")
        full.offer(1.0, 0, (0, 1), "b")
        assert full.summary(10.0, overload=True)["rejected"] == 1
