"""Overload protection: specs, admission policies, engine behavior.

The two invariants this file pins hardest:

* protection OFF is a no-op — seed-7 reports are *byte-identical* to
  the pre-protection engine (digests pinned below);
* protection ON bounds the tail — at 3x capacity the unprotected p99
  grows with duration while the bounded-queue p99 stays put.
"""

import dataclasses

import pytest

from repro.core.errors import LoadError
from repro.load import (
    LoadEngine,
    OverloadSpec,
    RequestTemplate,
    admission_by_name,
    profile_by_name,
    validate_load_report,
)
from repro.load.overload import (
    AdaptiveAdmission,
    BoundedQueueAdmission,
    TokenBucketAdmission,
)

_HORIZON = 10_000_000.0

#: Canonical seed-7 digests of the pre-protection engine.  The
#: protection-off path must reproduce these byte for byte.
_PINNED = {
    "steady": "6efcdef6991b2f0c47f5c9db4ba2c8ff8a36c0666c7abcc3bbfe6521674f47c5",
    "bursty": "e2d18397d7426837dc1d7cedbd2120bd0e0df1927f19d89b17bfd7956a6b2cde",
    "closed": "0c28fbbf2cb42a56e9356d2a064ac97ca501a9fea4ef264fbd83391fa2965e39",
}


def _protected(name="steady", multiplier=3.2, **spec_kwargs):
    spec_kwargs.setdefault("admission", "bounded-queue")
    spec_kwargs.setdefault("queue_limit", 32)
    return dataclasses.replace(
        profile_by_name(name).scaled(multiplier),
        overload=OverloadSpec(**spec_kwargs),
    )


class TestOverloadSpec:
    def test_default_is_noop(self):
        assert OverloadSpec().is_noop()

    @pytest.mark.parametrize("kwargs", [
        {"admission": "bounded-queue"},
        {"station_capacity": 8},
        {"breaker_threshold": 2},
    ])
    def test_any_protection_breaks_noop(self, kwargs):
        assert not OverloadSpec(**kwargs).is_noop()

    @pytest.mark.parametrize("kwargs", [
        {"admission": "nope"},
        {"queue_limit": 0},
        {"station_capacity": -1},
        {"admission": "token-bucket"},          # needs a rate
        {"token_rate_per_s": -1.0},
        {"token_burst": 0},
        {"admission": "adaptive"},              # needs a target
        {"target_p99_ns": -1.0},
        {"reject_retry": "maybe"},
        {"max_retries": -1},
        {"retry_budget": 1.5},
        {"retry_budget": -0.1},
        {"breaker_threshold": -1},
        {"breaker_probes": 0},
        {"breaker_derate_trip": 2.0},
        {"retry_backoff_ns": -1.0},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(LoadError):
            OverloadSpec(**kwargs)

    def test_round_trip(self):
        spec = OverloadSpec(
            admission="adaptive", target_p99_ns=5e6,
            station_capacity=16, reject_retry="backoff",
            breaker_threshold=3,
        )
        assert OverloadSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(LoadError):
            OverloadSpec.from_dict({"admission": "none", "bogus": 1})


class TestAdmissionPolicies:
    def test_factory_returns_the_named_policy(self):
        assert isinstance(
            admission_by_name(
                OverloadSpec(admission="bounded-queue"), 7
            ),
            BoundedQueueAdmission,
        )
        assert isinstance(
            admission_by_name(
                OverloadSpec(
                    admission="token-bucket", token_rate_per_s=1000.0
                ), 7,
            ),
            TokenBucketAdmission,
        )

    def test_bounded_queue_gates_on_backlog(self):
        policy = admission_by_name(
            OverloadSpec(admission="bounded-queue", queue_limit=4), 7
        )
        assert policy.admit(0.0, 3, ("g", 0))
        assert not policy.admit(0.0, 4, ("g", 1))

    def test_token_bucket_exhausts_and_refills(self):
        policy = admission_by_name(
            OverloadSpec(
                admission="token-bucket",
                token_rate_per_s=1e9,  # one token per simulated ns
                token_burst=2,
            ),
            7,
        )
        assert policy.admit(0.0, 0, ("g", 0))
        assert policy.admit(0.0, 0, ("g", 1))
        assert not policy.admit(0.0, 0, ("g", 2))   # bucket dry
        assert policy.admit(5.0, 0, ("g", 3))       # refilled

    def test_adaptive_backs_off_over_target_and_recovers(self):
        policy = admission_by_name(
            OverloadSpec(admission="adaptive", target_p99_ns=100.0), 7
        )
        for __ in range(policy._PERIOD):
            policy.observe(0.0, 1_000.0)            # way over target
        assert policy._fraction < 1.0
        shrunk = policy._fraction
        for __ in range(policy._PERIOD * policy._WINDOW):
            policy.observe(0.0, 1.0)                # way under target
        assert policy._fraction > shrunk

    def test_adaptive_gate_is_deterministic(self):
        spec = OverloadSpec(admission="adaptive", target_p99_ns=100.0)
        first = admission_by_name(spec, 7)
        again = admission_by_name(spec, 7)
        for policy in (first, again):
            for __ in range(policy._PERIOD):
                policy.observe(0.0, 1_000.0)
        draws = [
            policy.admit(0.0, 0, ("g", index))
            for policy in (first, again)
            for index in range(50)
        ]
        assert draws[:50] == draws[50:]
        assert not all(draws[:50])                  # fraction < 1 sheds


class TestProtectionOffIdentity:
    @pytest.mark.parametrize("name", sorted(_PINNED))
    def test_unprotected_digest_matches_pre_protection_engine(self, name):
        result = LoadEngine(profile_by_name(name), seed=7).run(_HORIZON)
        assert result.digest() == _PINNED[name]
        assert "overload" not in result.to_dict()

    def test_noop_spec_is_byte_identical_to_no_spec(self):
        profile = profile_by_name("steady")
        with_noop = dataclasses.replace(profile, overload=OverloadSpec())
        plain = LoadEngine(profile, seed=7).run(_HORIZON)
        noop = LoadEngine(with_noop, seed=7).run(_HORIZON)
        assert noop.canonical_json() == plain.canonical_json()


class TestProtectedEngine:
    def test_bounded_queue_rejects_and_bounds_p99(self):
        protected = LoadEngine(_protected(), seed=7).run(_HORIZON * 2)
        unprotected = LoadEngine(
            profile_by_name("steady").scaled(3.2), seed=7
        ).run(_HORIZON * 2)
        section = protected.to_dict()["overload"]
        assert section["totals"]["rejected"] > 0
        assert (
            protected.latency["p99"] < unprotected.latency["p99"]
        )

    def test_unprotected_p99_grows_with_duration_protected_does_not(self):
        base = profile_by_name("steady").scaled(3.2)
        u_short = LoadEngine(base, seed=7).run(_HORIZON)
        u_long = LoadEngine(base, seed=7).run(_HORIZON * 4)
        # Open-loop overload: the queue (and the tail) never stops
        # growing, so doubling the horizon keeps inflating p99 ...
        assert u_long.latency["p99"] > 2.0 * u_short.latency["p99"]
        p_short = LoadEngine(_protected(), seed=7).run(_HORIZON)
        p_long = LoadEngine(_protected(), seed=7).run(_HORIZON * 4)
        # ... while the bounded queue pins it (well under 2x growth).
        assert p_long.latency["p99"] < 2.0 * p_short.latency["p99"]

    def test_protected_run_replays_bit_identically(self):
        first = LoadEngine(_protected(), seed=7).run(_HORIZON)
        again = LoadEngine(_protected(), seed=7).run(_HORIZON)
        assert first.canonical_json() == again.canonical_json()

    def test_protected_report_validates(self):
        result = LoadEngine(
            _protected(station_capacity=16, reject_retry="backoff"),
            seed=7,
        ).run(_HORIZON)
        payload = result.to_dict()
        assert validate_load_report(payload) == []
        assert payload["overload"]["schema"] == "repro-load-overload/1"

    def test_accounting_balances(self):
        result = LoadEngine(
            _protected(station_capacity=16), seed=7
        ).run(_HORIZON)
        section = result.to_dict()["overload"]
        for counts in section["generators"].values():
            # Every offered or retried arrival was accepted, rejected,
            # or broken — nothing vanishes at the door.
            assert (
                counts["offered"] + counts["retried"]
                == counts["accepted"] + counts["rejected"]
                + counts["broken"]
            )
            # Every accepted request completed, was deadline-shed, or
            # was evicted mid-route by a bounded station.
            assert (
                counts["accepted"]
                == counts["completed"] + counts["shed"] + counts["evicted"]
            )

    def test_deadlines_shed_with_exact_station_accounting(self):
        profile = profile_by_name("steady").scaled(3.2)
        deadline = dataclasses.replace(
            profile,
            open_loops=tuple(
                dataclasses.replace(spec, templates=tuple(
                    dataclasses.replace(t, deadline_ns=2_000_000.0)
                    for t in spec.templates
                ))
                for spec in profile.open_loops
            ),
        )
        result = LoadEngine(deadline, seed=7).run(_HORIZON * 2)
        payload = result.to_dict()
        totals = payload["overload"]["totals"]
        assert totals["shed"] > 0
        station_sheds = sum(
            summary["shed"] for summary in payload["stations"].values()
        )
        assert station_sheds == totals["shed"]
        # Shed wait is accounted and each shed waited past its deadline.
        total_wait = sum(
            summary["shed_wait_ns"]
            for summary in payload["stations"].values()
        )
        assert total_wait > totals["shed"] * 2_000_000.0

    def test_closed_loop_survives_rejections(self):
        profile = dataclasses.replace(
            profile_by_name("closed").scaled(2.0),
            overload=OverloadSpec(admission="bounded-queue", queue_limit=2),
        )
        result = LoadEngine(profile, seed=7).run(_HORIZON * 2)
        section = result.to_dict()["overload"]
        counts = section["generators"]["clients"]
        assert counts["rejected"] > 0
        # Rejected clients reissued: far more offers than one per client.
        assert counts["offered"] > 128

    def test_backoff_retries_recover_rejections(self):
        drop = LoadEngine(_protected(), seed=7).run(_HORIZON)
        retry = LoadEngine(
            _protected(reject_retry="backoff", max_retries=3),
            seed=7,
        ).run(_HORIZON)
        d = drop.to_dict()["overload"]["totals"]
        r = retry.to_dict()["overload"]["totals"]
        assert d["retried"] == 0
        assert r["retried"] > 0
        assert retry.completed > drop.completed

    def test_breakers_open_under_a_lossy_fault_plan(self):
        from repro.faults import FaultPlan, FragmentFault, RetryPolicy

        plan = FaultPlan(
            seed=3,
            fragments=(FragmentFault(loss=0.9),),
            retry=RetryPolicy(max_attempts=2, retry_budget=0.5),
        )
        profile = _protected(breaker_threshold=2, breaker_cooldown_ns=2e6)
        result = LoadEngine(profile, seed=7, faults=plan).run(_HORIZON * 2)
        section = result.to_dict()["overload"]
        assert section["totals"]["broken"] > 0
        breakers = section["breakers"]
        assert breakers, "lossy links should surface in the board"
        assert any(b["opened"] > 0 for b in breakers.values())
        # The timeline replays: states are drawn from the machine's
        # vocabulary and transition stamps never run backwards.
        for link in breakers.values():
            stamps = [t["at_ns"] for t in link["transitions"]]
            assert stamps == sorted(stamps)
        # And the whole protected+faulted run is still bit-identical.
        again = LoadEngine(profile, seed=7, faults=plan).run(_HORIZON * 2)
        assert result.canonical_json() == again.canonical_json()

    def test_retry_budget_zero_disables_retries(self):
        result = LoadEngine(
            _protected(
                reject_retry="backoff", max_retries=3, retry_budget=0.0
            ),
            seed=7,
        ).run(_HORIZON)
        assert result.to_dict()["overload"]["totals"]["retried"] == 0
