"""Dispatch policies: routing rules and determinism."""

import pytest

from repro.core.errors import ModelError
from repro.load import policy_by_name


class TestRoundRobin:
    def test_cycles_and_skips_source(self):
        policy = policy_by_name("round-robin", nodes=4, seed=7)
        picks = [
            policy.pick(0, 0, -1, "t", [0, 0, 0, 0]) for __ in range(4)
        ]
        # Cycle 0,1,2,3 with 0 (the source) bumped to 1.
        assert picks == [1, 1, 2, 3]

    def test_never_picks_source(self):
        policy = policy_by_name("round-robin", nodes=2, seed=7)
        assert all(
            policy.pick(1, 0, -1, "t", [0, 0]) == 0 for __ in range(6)
        )


class TestLeastLoaded:
    def test_picks_smallest_backlog_excluding_source(self):
        policy = policy_by_name("least-loaded", nodes=4, seed=7)
        assert policy.pick(0, 0, -1, "t", [0, 5, 2, 9]) == 2

    def test_ties_break_on_lowest_node(self):
        policy = policy_by_name("least-loaded", nodes=4, seed=7)
        assert policy.pick(3, 0, -1, "t", [4, 4, 4, 0]) == 0


class TestAffinity:
    def test_sticky_per_client(self):
        policy = policy_by_name("affinity", nodes=8, seed=7)
        first = policy.pick(0, 1, 12, "rpc", [0] * 8)
        assert all(
            policy.pick(0, 1, 12, "rpc", [0] * 8) == first
            for __ in range(5)
        )

    def test_independent_of_backlog(self):
        policy = policy_by_name("affinity", nodes=8, seed=7)
        idle = policy.pick(0, 1, 12, "rpc", [0] * 8)
        slammed = policy.pick(0, 1, 12, "rpc", [99] * 8)
        assert idle == slammed

    def test_clients_spread_across_nodes(self):
        policy = policy_by_name("affinity", nodes=8, seed=7)
        homes = {
            policy.pick(0, 1, client, "rpc", [0] * 8)
            for client in range(64)
        }
        assert len(homes) > 3


def test_unknown_policy_is_model_error():
    with pytest.raises(ModelError):
        policy_by_name("random", nodes=4, seed=7)
