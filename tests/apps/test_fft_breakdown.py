"""Tests for the FFT compute/communication breakdown."""

import pytest

from repro.apps import FFT2D
from repro.core.operations import OperationStyle


@pytest.fixture(scope="module")
def kernel(t3d_machine):
    return FFT2D(t3d_machine)


class TestBreakdown:
    def test_totals_consistent(self, kernel):
        breakdown = kernel.breakdown()
        assert breakdown.total_us == pytest.approx(
            breakdown.compute_us + breakdown.transpose_us
        )
        assert 0 < breakdown.communication_fraction < 1

    def test_communication_is_substantial(self, kernel):
        """The paper's motivation: the transpose is a first-order cost,
        not a rounding error, even at 1024^2 on 64 nodes."""
        breakdown = kernel.breakdown(OperationStyle.BUFFER_PACKING)
        assert breakdown.communication_fraction > 0.25

    def test_chained_reduces_communication_share(self, kernel):
        packing = kernel.breakdown(OperationStyle.BUFFER_PACKING)
        chained = kernel.breakdown(OperationStyle.CHAINED)
        assert chained.transpose_us < packing.transpose_us
        assert chained.communication_fraction < packing.communication_fraction
        assert chained.compute_us == packing.compute_us

    def test_faster_nodes_shift_share_to_communication(self, kernel):
        slow_cpu = kernel.breakdown(node_mflops=10.0)
        fast_cpu = kernel.breakdown(node_mflops=200.0)
        assert fast_cpu.communication_fraction > slow_cpu.communication_fraction

    def test_str_reports_fraction(self, kernel):
        assert "% communication" in str(kernel.breakdown())
