"""Tests for the FEM kernel (repro.apps.fem)."""

import numpy as np
import pytest

from repro.apps.fem import FEMesh, FEMKernel, FEMSolver


@pytest.fixture(scope="module")
def mesh():
    return FEMesh.synthetic_valley(side=32, n_nodes=8, seed=7)


class TestMesh:
    def test_vertex_count(self, mesh):
        assert mesh.n_vertices == 32 * 32

    def test_edges_are_unique_and_sorted(self, mesh):
        assert np.all(mesh.edges[:, 0] < mesh.edges[:, 1])
        assert len(np.unique(mesh.edges, axis=0)) == len(mesh.edges)

    def test_partition_covers_all_nodes(self, mesh):
        assert set(np.unique(mesh.partition)) == set(range(8))

    def test_well_partitioned(self, mesh):
        """Only a fraction of elements on boundaries (Section 6.1.2)."""
        assert mesh.boundary_fraction() < 0.5

    def test_halo_symmetry(self, mesh):
        halo = mesh.halo()
        for (src, dst) in halo:
            assert (dst, src) in halo

    def test_halo_vertices_owned_by_sender(self, mesh):
        for (src, __), vertices in mesh.halo().items():
            assert np.all(mesh.partition[vertices] == src)

    def test_deterministic(self):
        a = FEMesh.synthetic_valley(side=16, n_nodes=4, seed=3)
        b = FEMesh.synthetic_valley(side=16, n_nodes=4, seed=3)
        assert np.array_equal(a.edges, b.edges)


class TestSolver:
    def test_jacobi_converges(self, mesh):
        solver = FEMSolver(mesh)
        rng = np.random.default_rng(0)
        x_true = rng.normal(size=mesh.n_vertices)
        b = solver.matvec(x_true)
        x, residual = solver.solve(b, iterations=300)
        assert residual < 1e-3 * np.linalg.norm(b)
        assert np.allclose(x, x_true, atol=1e-2)

    def test_matvec_is_spd_diagonal_dominant(self, mesh):
        solver = FEMSolver(mesh)
        x = np.ones(mesh.n_vertices)
        # (L + I) * ones = ones (Laplacian kills constants).
        assert np.allclose(solver.matvec(x), x)

    def test_residual_decreases_with_iterations(self, mesh):
        solver = FEMSolver(mesh)
        b = np.ones(mesh.n_vertices)
        __, r_short = solver.solve(b, iterations=20)
        __, r_long = solver.solve(b, iterations=100)
        assert r_long < r_short


class TestKernel:
    def test_plan_is_indexed(self, t3d_machine):
        kernel = FEMKernel(t3d_machine, n_nodes=8, side=32)
        plan = kernel.communication_plan()
        dominant = plan.dominant_op()
        assert dominant.x.is_indexed
        assert dominant.y.is_indexed

    def test_neighbor_only_flows(self, t3d_machine):
        kernel = FEMKernel(t3d_machine, n_nodes=8, side=32)
        flows = kernel.communication_plan().flows()
        # Strip partitions talk to nearby strips only.
        assert all(abs(src - dst) <= 2 for src, dst in flows)

    def test_report_ordering(self, t3d_machine):
        report = FEMKernel(t3d_machine, n_nodes=64, side=256).report()
        assert report.packing_measured_mbps < report.chained_measured_mbps
        assert report.chained_measured_mbps < report.chained_model_mbps
