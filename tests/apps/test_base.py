"""Tests for the application-kernel harness (repro.apps.base)."""

import pytest

from repro.apps.base import ApplicationKernel, KernelReport
from repro.apps.sor import SORKernel
from repro.core.operations import OperationStyle


class TestKernelReport:
    def test_str_contains_all_columns(self, t3d_machine):
        report = KernelReport(
            kernel="demo",
            machine=t3d_machine.name,
            packing_measured_mbps=10.0,
            chained_measured_mbps=15.0,
            chained_model_mbps=20.0,
        )
        text = str(report)
        assert "demo" in text
        assert "10.0" in text and "15.0" in text and "20.0" in text


class TestHarness:
    def test_base_class_requires_plan(self, t3d_machine):
        kernel = ApplicationKernel(t3d_machine)
        with pytest.raises(NotImplementedError):
            kernel.communication_plan()

    def test_measure_styles_use_matching_libraries(self, t3d_machine):
        kernel = SORKernel(t3d_machine, n=256, n_nodes=16)
        packing = kernel.measure(OperationStyle.BUFFER_PACKING)
        chained = kernel.measure(OperationStyle.CHAINED)
        assert packing.sample.library == "buffer-packing"
        assert chained.sample.library == "low-level"

    def test_model_estimate_positive_both_styles(self, t3d_machine):
        kernel = SORKernel(t3d_machine, n=256, n_nodes=16)
        for style in OperationStyle:
            assert kernel.model_estimate(style) > 0

    def test_report_assembles_all_three_columns(self, t3d_machine):
        report = SORKernel(t3d_machine, n=256, n_nodes=16).report()
        assert report.kernel == "SOR"
        assert report.machine == t3d_machine.name
        assert report.packing_measured_mbps > 0
        assert report.chained_measured_mbps > 0
        assert report.chained_model_mbps > 0

    def test_kernels_on_paragon(self, paragon_machine):
        """Kernels are machine-independent."""
        report = SORKernel(paragon_machine, n=256, n_nodes=16).report()
        assert report.machine == "Intel Paragon"
        assert report.chained_measured_mbps > 0
