"""Tests for the 2-D FFT kernel (repro.apps.fft)."""

import numpy as np
import pytest

from repro.apps.fft import FFT2D, distributed_transpose
from repro.core.operations import OperationStyle


@pytest.fixture(scope="module")
def small_fft(t3d_machine):
    return FFT2D(t3d_machine, n=64, n_nodes=8)


class TestFunctionalCorrectness:
    def test_distributed_transpose_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(32, 32)) + 1j * rng.normal(size=(32, 32))
        blocks = [a[p * 8 : (p + 1) * 8] for p in range(4)]
        out = np.vstack(distributed_transpose(blocks))
        assert np.allclose(out, a.T)

    def test_fft_matches_numpy(self, small_fft):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(64, 64)) + 1j * rng.normal(size=(64, 64))
        ours = small_fft.run(data)
        assert np.allclose(ours, np.fft.fft2(data), atol=1e-9)

    def test_real_input(self, small_fft):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(64, 64)).astype(complex)
        assert np.allclose(small_fft.run(data), np.fft.fft2(data), atol=1e-9)

    def test_wrong_shape_rejected(self, small_fft):
        with pytest.raises(ValueError):
            small_fft.run(np.zeros((32, 32), dtype=complex))


class TestCommunicationSide:
    def test_plan_is_complex_transpose(self, t3d_machine):
        kernel = FFT2D(t3d_machine, n=1024, n_nodes=64)
        plan = kernel.communication_plan()
        assert len(plan) == 64 * 63
        assert plan.dominant_op().nwords == 512  # 16x16 complex patch

    def test_report_ordering(self, t3d_machine):
        report = FFT2D(t3d_machine, n=1024, n_nodes=64).report()
        assert report.packing_measured_mbps < report.chained_measured_mbps
        assert report.chained_measured_mbps < report.chained_model_mbps

    def test_loop_order_choice_matters(self, t3d_machine):
        """Section 5.2: on the T3D strided stores (row order) beat
        strided loads (col order) for the packing implementation."""
        row = FFT2D(t3d_machine, n=1024, n_nodes=64, loop_order="row")
        col = FFT2D(t3d_machine, n=1024, n_nodes=64, loop_order="col")
        row_rate = row.measure(OperationStyle.BUFFER_PACKING).per_node_mbps
        col_rate = col.measure(OperationStyle.BUFFER_PACKING).per_node_mbps
        assert row_rate > col_rate

    def test_paragon_prefers_strided_loads(self, paragon_machine):
        row = FFT2D(paragon_machine, n=1024, n_nodes=64, loop_order="row")
        col = FFT2D(paragon_machine, n=1024, n_nodes=64, loop_order="col")
        row_rate = row.measure(OperationStyle.BUFFER_PACKING).per_node_mbps
        col_rate = col.measure(OperationStyle.BUFFER_PACKING).per_node_mbps
        assert col_rate > row_rate

    def test_invalid_partition_rejected(self, t3d_machine):
        with pytest.raises(ValueError):
            FFT2D(t3d_machine, n=100, n_nodes=64)
