"""Tests for the SOR kernel (repro.apps.sor)."""

import numpy as np
import pytest

from repro.apps.sor import SORKernel, SORSolver
from repro.core.operations import OperationStyle


class TestSolver:
    def test_zero_rhs_fixed_point(self):
        solver = SORSolver(17)
        u, residual = solver.solve(np.zeros((17, 17)), iterations=5)
        assert np.allclose(u, 0.0)
        assert residual == pytest.approx(0.0, abs=1e-12)

    def test_poisson_converges(self):
        n = 33
        solver = SORSolver(n, omega=1.7)
        f = -np.ones((n, n))
        u, residual = solver.solve(f, iterations=800)
        assert residual < 1e-6
        # Poisson with -1 source and zero boundary bulges positive.
        assert u[n // 2, n // 2] > 0

    def test_matches_manufactured_solution(self):
        n = 33
        xs = np.linspace(0, 1, n)
        x, y = np.meshgrid(xs, xs, indexing="ij")
        exact = np.sin(np.pi * x) * np.sin(np.pi * y)
        f = -2 * np.pi**2 * exact
        solver = SORSolver(n, omega=1.8)
        u, __ = solver.solve(f, iterations=1500)
        assert np.max(np.abs(u - exact)) < 5e-3

    def test_over_relaxation_accelerates(self):
        n = 33
        f = -np.ones((n, n))
        __, residual_jacobi_like = SORSolver(n, omega=1.0).solve(f, 100)
        __, residual_sor = SORSolver(n, omega=1.8).solve(f, 100)
        assert residual_sor < residual_jacobi_like

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SORSolver(2)
        with pytest.raises(ValueError):
            SORSolver(16, omega=2.5)


class TestKernel:
    def test_plan_is_contiguous_shift(self, t3d_machine):
        kernel = SORKernel(t3d_machine, n=256, n_nodes=64)
        plan = kernel.communication_plan()
        assert plan.pattern_histogram() == {"1Q1": 128}
        assert plan.dominant_op().nwords == 256

    def test_flows_are_both_neighbors(self, t3d_machine):
        kernel = SORKernel(t3d_machine, n=256, n_nodes=8)
        flows = set(kernel.communication_plan().flows())
        assert (0, 1) in flows and (0, 7) in flows

    def test_report_ordering(self, t3d_machine):
        report = SORKernel(t3d_machine).report()
        # Contiguous data: chained still wins, but the model sits far
        # above both measured columns (small messages), as in Table 6.
        assert report.packing_measured_mbps < report.chained_measured_mbps
        assert report.chained_model_mbps > 1.7 * report.chained_measured_mbps

    def test_packing_close_to_chained_for_contiguous(self, t3d_machine):
        """SOR is the pattern where buffer packing loses least."""
        report = SORKernel(t3d_machine).report()
        sor_gain = report.chained_measured_mbps / report.packing_measured_mbps
        from repro.apps.fft import FFT2D

        fft_report = FFT2D(t3d_machine).report()
        fft_gain = (
            fft_report.chained_measured_mbps / fft_report.packing_measured_mbps
        )
        assert sor_gain < 3.0  # bounded advantage

    def test_invalid_partition_rejected(self, t3d_machine):
        with pytest.raises(ValueError):
            SORKernel(t3d_machine, n=250, n_nodes=64)
