"""Tests for what-if machine variants (repro.machines.variants)."""

import pytest

from repro.core import CompositionError
from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.machines import (
    paragon,
    paragon_fixed_ni,
    t3d,
    t3d_contiguous_deposits,
    t3d_without_readahead,
)
from repro.runtime.engine import CommRuntime
from repro.runtime.libraries import lowlevel_profile


def simplex_chained_mbps(machine, x, y, nbytes=131072):
    runtime = CommRuntime(machine, library=lowlevel_profile())
    return runtime.transfer(
        x, y, nbytes, OperationStyle.CHAINED, duplex=False
    ).mbps


class TestParagonFixedNI:
    def test_send_quirks_removed(self):
        machine = paragon_fixed_ni()
        assert machine.quirks.send_rate_scale == 1.0
        assert not machine.quirks.measures_simplex

    def test_recovers_the_30_to_40_percent_loss(self):
        """Section 5.1.4: pipelined loads unusable -> 30-40% loss.
        With working parts, processor-send-bound chained transfers
        should gain roughly that back (like for like: simplex)."""
        stock = simplex_chained_mbps(paragon(), strided(16), CONTIGUOUS)
        fixed = simplex_chained_mbps(paragon_fixed_ni(), strided(16), CONTIGUOUS)
        gain = fixed / stock - 1.0
        assert 0.2 < gain < 0.5

    def test_hardware_unchanged(self):
        assert paragon_fixed_ni().node == paragon().node


class TestT3DContiguousDeposits:
    def test_chained_infeasible_for_noncontiguous(self):
        model = t3d_contiguous_deposits().model(source="paper")
        with pytest.raises(CompositionError):
            model.build(INDEXED, INDEXED, "chained")

    def test_contiguous_chained_still_works(self):
        model = t3d_contiguous_deposits().model(source="paper")
        assert model.estimate(CONTIGUOUS, CONTIGUOUS, "chained").mbps > 0

    def test_compiler_falls_back_to_packing(self):
        choice = t3d_contiguous_deposits().model(source="paper").choose(
            INDEXED, INDEXED
        )
        assert choice.style is OperationStyle.BUFFER_PACKING

    def test_simulator_agrees_with_capabilities(self):
        node = t3d_contiguous_deposits().node_memory(nwords=512)
        assert not node.supports_deposit(strided(64))


class TestT3DWithoutReadahead:
    def test_send_streams_lose_most_of_their_edge(self):
        stock = t3d().node_memory(4096).measure_load_send(CONTIGUOUS)
        without = t3d_without_readahead().node_memory(4096).measure_load_send(
            CONTIGUOUS
        )
        assert stock > 1.4 * without


class TestVariantIsolation:
    def test_variants_do_not_mutate_stock_machines(self):
        stock = t3d()
        t3d_contiguous_deposits()
        t3d_without_readahead()
        assert stock.capabilities.deposit.value == "any"
        assert stock.node.read_ahead.enabled
