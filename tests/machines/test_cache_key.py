"""The measurement cache key covers everything the table depends on.

Sweep workers share the on-disk calibration cache; the key is the only
thing standing between a worker and somebody else's stale table.  Two
regressions pinned here: the machine's *capabilities* participate (they
decide which receive entries get measured — before they did, a
capability-only ablation collided with its base machine), and
``MEASURE_VERSION`` participates (so a bumped measurement procedure
orphans old disk entries instead of serving them).
"""

from dataclasses import replace

from repro.core.operations import DepositSupport
from repro.core.transfers import TransferKind
from repro.machines import measure as measure_module
from repro.machines.measure import (
    DEFAULT_STRIDES,
    calibration_entries,
    measure_table,
    measurement_cache_key,
)


def _key(machine, **kwargs):
    defaults = dict(
        congestion=machine.network.default_congestion,
        nwords=4096,
        strides=DEFAULT_STRIDES,
    )
    defaults.update(kwargs)
    return measurement_cache_key(machine, **defaults)


class TestCacheKeyInputs:
    def test_key_is_stable(self, t3d_machine):
        assert _key(t3d_machine) == _key(t3d_machine)

    def test_machines_do_not_collide(self, t3d_machine, paragon_machine):
        assert _key(t3d_machine) != _key(paragon_machine)

    def test_capabilities_change_invalidates_key(self, t3d_machine):
        ablated = t3d_machine.with_overrides(
            capabilities=replace(
                t3d_machine.capabilities, deposit=DepositSupport.NONE
            )
        )
        assert _key(ablated) != _key(t3d_machine)

    def test_version_bump_invalidates_key(self, t3d_machine, monkeypatch):
        before = _key(t3d_machine)
        monkeypatch.setattr(
            measure_module,
            "MEASURE_VERSION",
            measure_module.MEASURE_VERSION + "-test-bump",
        )
        assert _key(t3d_machine) != before

    def test_engine_selection_invalidates_key(self, t3d_machine, monkeypatch):
        from repro.memsim.node import ENGINE_ENV

        monkeypatch.delenv(ENGINE_ENV, raising=False)
        auto = _key(t3d_machine)
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        assert _key(t3d_machine) != auto

    def test_stream_parameters_invalidate_key(self, t3d_machine):
        assert _key(t3d_machine, nwords=8192) != _key(t3d_machine)
        assert _key(t3d_machine, strides=(2, 4)) != _key(t3d_machine)
        assert _key(t3d_machine, congestion=7) != _key(t3d_machine)

    def test_batch_version_bump_invalidates_key(
        self, t3d_machine, monkeypatch
    ):
        """A change to the batching semantics must orphan every cached
        table — the batched and scalar sweep engines share this cache,
        so results produced under different batching rules must never
        collide on one key."""
        before = _key(t3d_machine)
        monkeypatch.setattr(
            measure_module,
            "BATCH_VERSION",
            measure_module.BATCH_VERSION + "-test-bump",
        )
        assert _key(t3d_machine) != before


class TestCrossEngineCachePoisoning:
    """The sweep engine (cell vs batch) deliberately does NOT
    participate in the key: both engines produce bit-identical tables,
    so they share cache entries.  The regression pinned here is the
    *safety* of that sharing — a table written by one engine and served
    to the other must be byte-for-byte the table the other engine would
    have measured itself."""

    def test_batch_and_cell_share_cache_entries(
        self, t3d_machine, tmp_path, monkeypatch
    ):
        from repro.caching import CACHE_DIR_ENV, CACHE_ENV

        monkeypatch.delenv(CACHE_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        batch = measure_table(t3d_machine, nwords=2048, engine="batch")
        served = measure_table(t3d_machine, nwords=2048, engine="cell")
        assert served.to_dict() == batch.to_dict()
        fresh = measure_table(
            t3d_machine, nwords=2048, engine="cell", use_cache=False
        )
        assert fresh.to_dict() == batch.to_dict()


class TestCapabilityAblationTables:
    """The end-to-end consequence: an ablated machine measures a
    *different grid*, so conflating the keys would hand it wrong
    entries from the cache."""

    def test_ablated_machine_measures_fewer_entries(self, t3d_machine):
        ablated = t3d_machine.with_overrides(
            capabilities=replace(
                t3d_machine.capabilities, deposit=DepositSupport.NONE
            )
        )
        full = calibration_entries(t3d_machine)
        reduced = calibration_entries(ablated)
        assert len(reduced) < len(full)
        assert all(letter != "D" for letter, __, __ in reduced)

    def test_cached_tables_not_conflated(self, t3d_machine):
        ablated = t3d_machine.with_overrides(
            capabilities=replace(
                t3d_machine.capabilities, deposit=DepositSupport.NONE
            )
        )
        base_table = measure_table(t3d_machine, nwords=4096)
        ablated_table = measure_table(ablated, nwords=4096)
        assert base_table is not ablated_table
        assert base_table.get(TransferKind.RECEIVE_DEPOSIT, "0", "1") > 0
        assert ablated_table.get(TransferKind.RECEIVE_DEPOSIT, "0", "1") is None
