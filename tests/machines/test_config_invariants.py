"""Config-invariant tests: the machine descriptions match Section 3.5.

These lock the *qualitative* hardware facts the paper states, so a
future calibration tweak cannot silently turn the T3D into a machine
with pipelined loads or the Paragon into one with a general deposit
engine.
"""

from repro.core.operations import DepositSupport
from repro.machines import paragon, t3d


class TestT3DDescription:
    def test_alpha_blocking_loads(self, t3d_machine):
        """The 21064 has no load pipelining."""
        assert t3d_machine.node.processor.pipelined_load_depth == 0

    def test_write_around_cache(self, t3d_machine):
        assert t3d_machine.node.cache.write_policy == "around"

    def test_cache_geometry(self, t3d_machine):
        cache = t3d_machine.node.cache
        assert cache.size_bytes == 8192
        assert cache.associativity == 1  # direct-mapped on-chip cache

    def test_non_interleaved_memory(self, t3d_machine):
        """'a simple non-interleaved memory system'."""
        assert t3d_machine.node.dram.n_banks == 1

    def test_annex_handles_any_pattern(self, t3d_machine):
        assert t3d_machine.capabilities.deposit is DepositSupport.ANY
        assert t3d_machine.node.deposit.patterns == "any"

    def test_no_dma_no_coprocessor(self, t3d_machine):
        assert not t3d_machine.node.dma.present
        assert not t3d_machine.capabilities.coprocessor_receive

    def test_torus_with_port_sharing(self, t3d_machine):
        assert t3d_machine.network.port_sharing == 2
        assert t3d_machine.topology(64).wraparound

    def test_write_buffer_merges(self, t3d_machine):
        assert t3d_machine.node.write_buffer.merge

    def test_read_ahead_available(self, t3d_machine):
        assert t3d_machine.node.read_ahead.enabled
        assert not t3d_machine.node.read_ahead.survives_writes


class TestParagonDescription:
    def test_i860_pipelined_loads(self, paragon_machine):
        assert paragon_machine.node.processor.pipelined_load_depth == 3
        assert paragon_machine.node.processor.pipelined_loads_bypass_cache

    def test_write_through_under_sunmos(self, paragon_machine):
        assert paragon_machine.node.cache.write_policy == "through"

    def test_cache_geometry(self, paragon_machine):
        cache = paragon_machine.node.cache
        assert cache.size_bytes == 16384
        assert cache.associativity == 4

    def test_dma_is_contiguous_only(self, paragon_machine):
        assert paragon_machine.node.dma.present
        assert paragon_machine.capabilities.deposit is DepositSupport.CONTIGUOUS
        assert not paragon_machine.node.deposit.supports(False)

    def test_second_processor_available(self, paragon_machine):
        assert paragon_machine.capabilities.coprocessor_receive

    def test_mesh_without_wraparound(self, paragon_machine):
        assert not paragon_machine.topology(64).wraparound
        assert paragon_machine.network.port_sharing == 1

    def test_measurement_quirks_recorded(self, paragon_machine):
        quirks = paragon_machine.quirks
        assert quirks.send_rate_scale < 1.0   # pipelined loads unusable
        assert quirks.measures_simplex        # no simultaneous send+recv
        assert quirks.bus_interleave_scale > 1.0

    def test_clock_rates(self, t3d_machine, paragon_machine):
        assert t3d_machine.node.processor.clock_mhz == 150.0
        assert paragon_machine.node.processor.clock_mhz == 50.0
