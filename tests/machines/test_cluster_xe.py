"""The hierarchical cluster machine, the XE/Gemini machine, and the
machine registry that exposes them."""

import pytest

from repro.core.calibration import TransferKind
from repro.core.errors import ModelError
from repro.machines import cluster, xe
from repro.machines.cluster import ClusterMachine
from repro.machines.registry import (
    MACHINE_FACTORIES,
    machine_by_key,
    machine_names,
)
from repro.netsim.topology import GeminiTorus


class TestRegistry:
    def test_names_match_factories(self):
        assert machine_names() == tuple(MACHINE_FACTORIES)
        assert {"t3d", "paragon", "cluster", "xe"} <= set(machine_names())

    def test_lookup(self):
        assert machine_by_key("cluster").name == cluster().name

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            machine_by_key("cm5")

    def test_every_machine_constructs_and_estimates(self):
        from repro.core.patterns import CONTIGUOUS

        for key in machine_names():
            model = machine_by_key(key).model(source="paper")
            choice = model.choose(CONTIGUOUS, CONTIGUOUS)
            assert choice.mbps > 0


class TestClusterMachine:
    def test_is_hierarchical(self):
        machine = cluster()
        assert isinstance(machine, ClusterMachine)
        assert machine.cores_per_node == 4
        assert machine.nic_ports == 1

    def test_nic_contention_clamps(self):
        machine = cluster()
        assert machine.nic_contention(1) == 1.0
        assert machine.nic_contention(4) == 4.0
        # More actives than cores cannot contend harder than the cores.
        assert machine.nic_contention(64) == 4.0

    def test_intra_node_rung_divides_under_concurrency(self):
        machine = cluster()
        alone = machine.intra_node_mbps(concurrent=1)
        shared = machine.intra_node_mbps(concurrent=4)
        assert alone == pytest.approx(4 * shared)
        assert machine.intra_node_ns(1 << 20) > 0

    def test_intra_node_rate_is_published_copy(self):
        machine = cluster()
        copy = machine.published.get(TransferKind.COPY, "1", "1")
        assert machine.intra_node_mbps() == copy

    def test_core_count_configurable(self):
        assert cluster(cores_per_node=8).cores_per_node == 8
        with pytest.raises(ModelError):
            cluster(cores_per_node=0)


class TestXeMachine:
    def test_topology_is_gemini_torus(self):
        machine = xe()
        topo = machine.topology_factory(64)
        assert isinstance(topo, GeminiTorus)
        assert topo.n_nodes >= 64
        assert len(topo.dims) == 3
        assert topo.dim_capacity == (1.0, 0.5, 1.0)

    def test_both_styles_feasible(self):
        model = xe().model(source="paper")
        from repro.core.patterns import CONTIGUOUS, strided

        for style in ("chained", "buffer-packing"):
            est = model.estimate(CONTIGUOUS, strided(64), style)
            assert est.mbps > 0

    def test_faster_than_t3d(self):
        from repro.core.patterns import CONTIGUOUS
        from repro.machines import t3d

        xe_est = xe().model(source="paper").estimate(
            CONTIGUOUS, CONTIGUOUS, "chained"
        )
        t3d_est = t3d().model(source="paper").estimate(
            CONTIGUOUS, CONTIGUOUS, "chained"
        )
        assert xe_est.mbps > t3d_est.mbps
