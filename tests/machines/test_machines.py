"""Tests for machine wiring (repro.machines.base, t3d, paragon)."""

import pytest

from dataclasses import replace

from repro.core import TransferKind
from repro.core.operations import DepositSupport
from repro.machines import measure_table, paragon, replace_node, t3d


class TestConstruction:
    def test_machines_are_fresh_instances(self):
        assert t3d() is not t3d()

    def test_names(self, t3d_machine, paragon_machine):
        assert t3d_machine.name == "Cray T3D"
        assert paragon_machine.name == "Intel Paragon"

    def test_capability_differences(self, t3d_machine, paragon_machine):
        assert t3d_machine.capabilities.deposit is DepositSupport.ANY
        assert paragon_machine.capabilities.deposit is DepositSupport.CONTIGUOUS
        assert paragon_machine.capabilities.coprocessor_receive
        assert not t3d_machine.capabilities.coprocessor_receive


class TestPaperTables:
    def test_paper_table_has_network_entries(self, t3d_machine):
        table = t3d_machine.paper_table()
        assert table.get(TransferKind.NETWORK_DATA, "0", "0") == 69.0
        assert table.get(TransferKind.NETWORK_ADP, "0", "0") == 38.0

    def test_paper_table_congestion_selection(self, t3d_machine):
        table = t3d_machine.paper_table(congestion=4)
        assert table.get(TransferKind.NETWORK_DATA, "0", "0") == 35.0

    def test_published_values_table1(self, t3d_machine, paragon_machine):
        assert t3d_machine.published.get(TransferKind.COPY, "1", "1") == 93.0
        assert paragon_machine.published.get(TransferKind.COPY, "1", "1") == 67.6


class TestModels:
    def test_model_sources(self, t3d_machine):
        paper_model = t3d_machine.model(source="paper")
        sim_model = t3d_machine.model(source="simulated")
        assert paper_model.table is not sim_model.table
        assert len(sim_model.table) > 0

    def test_unknown_source_rejected(self, t3d_machine):
        with pytest.raises(ValueError):
            t3d_machine.model(source="folklore")


class TestMeasureCaching:
    def test_repeated_measurement_is_cached(self, t3d_machine):
        first = measure_table(t3d_machine, nwords=4096)
        second = measure_table(t3d_machine, nwords=4096)
        assert first is second

    def test_different_parameters_not_conflated(self, t3d_machine):
        a = measure_table(t3d_machine, nwords=4096)
        b = measure_table(t3d_machine, nwords=4096, congestion=4)
        assert a is not b
        assert a.get(TransferKind.NETWORK_DATA, "0", "0") != b.get(
            TransferKind.NETWORK_DATA, "0", "0"
        )

    def test_modified_machine_remeasures(self, t3d_machine):
        modified = replace_node(
            t3d_machine,
            dram=replace(t3d_machine.node.dram, read_miss_ns=400.0),
        )
        base = measure_table(t3d_machine, nwords=4096)
        slow = measure_table(modified, nwords=4096)
        assert slow.get(TransferKind.COPY, 64, "1") < base.get(
            TransferKind.COPY, 64, "1"
        )


class TestOverrides:
    def test_with_overrides_replaces_fields(self, t3d_machine):
        changed = t3d_machine.with_overrides(index_run=5)
        assert changed.index_run == 5
        assert t3d_machine.index_run == 1

    def test_replace_node_shorthand(self, t3d_machine):
        changed = replace_node(t3d_machine, name="tweaked")
        assert changed.node.name == "tweaked"
        assert changed.node.dram == t3d_machine.node.dram
