"""Tests for measurement-harness coverage (repro.machines.measure)."""

import pytest

from repro.core import TransferKind
from repro.machines import measure_table


@pytest.fixture(scope="module")
def t3d_table(t3d_machine):
    return measure_table(t3d_machine, nwords=4096)


@pytest.fixture(scope="module")
def paragon_table(paragon_machine):
    return measure_table(paragon_machine, nwords=4096)


class TestCoverage:
    def test_t3d_measures_only_existing_hardware(self, t3d_table):
        """No DMA, no co-processor on the T3D: no 1F0, no 0Ry entries."""
        assert not t3d_table.has(TransferKind.FETCH_SEND, "1", "0")
        assert not t3d_table.has(TransferKind.RECEIVE_STORE, "0", "1")
        # But the general deposit engine covers all patterns.
        assert t3d_table.has(TransferKind.RECEIVE_DEPOSIT, "0", "w")
        assert t3d_table.has(TransferKind.RECEIVE_DEPOSIT, "0", 64)

    def test_paragon_dma_is_contiguous_only(self, paragon_table):
        assert paragon_table.has(TransferKind.FETCH_SEND, "1", "0")
        assert paragon_table.has(TransferKind.RECEIVE_DEPOSIT, "0", "1")
        assert not paragon_table.has(TransferKind.RECEIVE_DEPOSIT, "0", 64)
        # The co-processor receive-store covers the rest.
        assert paragon_table.has(TransferKind.RECEIVE_STORE, "0", "w")

    def test_stride_anchor_coverage(self, t3d_table):
        for stride in (2, 4, 8, 16, 32, 64):
            assert t3d_table.has(TransferKind.COPY, "1", stride)
            assert t3d_table.has(TransferKind.COPY, stride, "1")
            assert t3d_table.has(TransferKind.LOAD_SEND, stride, "0")

    def test_network_entries_present(self, t3d_table, paragon_table):
        for table in (t3d_table, paragon_table):
            assert table.has(TransferKind.NETWORK_DATA, "0", "0")
            assert table.has(TransferKind.NETWORK_ADP, "0", "0")

    def test_custom_stride_list(self, t3d_machine):
        table = measure_table(t3d_machine, nwords=4096, strides=(4, 128))
        assert table.has(TransferKind.COPY, "1", 128)
        assert not table.has(TransferKind.COPY, "1", 64)


class TestModelUsability:
    def test_simulated_model_answers_every_pattern(self, t3d_machine):
        """The simulated table must be complete enough to evaluate the
        full Figure 7 pattern grid without CalibrationError."""
        from repro.core.patterns import CONTIGUOUS, INDEXED, strided

        model = t3d_machine.model(source="simulated")
        for x in (CONTIGUOUS, strided(3), strided(100), INDEXED):
            for y in (CONTIGUOUS, strided(3), strided(100), INDEXED):
                for style in ("buffer-packing", "chained"):
                    assert model.estimate(x, y, style).mbps > 0
