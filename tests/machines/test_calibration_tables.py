"""Calibration validation: simulators vs the paper's Tables 1-3.

These are the Section 4 reproduction tests: running the memory-system
simulator with each machine's parameters must land within a stated
tolerance of every published basic-transfer figure, and — more
importantly — must preserve every qualitative asymmetry the paper
builds its argument on.

Known quantitative deviations (documented in EXPERIMENTS.md) get
per-entry tolerance overrides rather than being skipped.
"""

import pytest

from repro.machines import measure_table

#: Default fractional tolerance for simulated-vs-published entries.
TOLERANCE = 0.15

#: Entries where the simulator is known to deviate further; values are
#: the accepted fractional tolerance (see EXPERIMENTS.md, "calibration").
LOOSE = {
    ("Intel Paragon", "16C1"): 0.30,
    ("Intel Paragon", "16S0"): 0.30,
    ("Intel Paragon", "0R16"): 1.00,
    ("Intel Paragon", "0Rw"): 0.30,
    ("Intel Paragon", "wC1"): 0.30,
    ("Intel Paragon", "wS0"): 0.30,
    ("Intel Paragon", "1C16"): 0.25,
    ("Intel Paragon", "1Cw"): 0.25,
}


@pytest.fixture(scope="module")
def tables(t3d_machine, paragon_machine):
    result = {}
    for machine in (t3d_machine, paragon_machine):
        result[machine.name] = (
            machine.paper_table().to_dict(),
            measure_table(machine, nwords=16384).to_dict(),
        )
    return result


def entries(tables, name):
    published, simulated = tables[name]
    return sorted(set(published) & set(simulated))


class TestQuantitativeCalibration:
    def test_t3d_every_entry_within_tolerance(self, tables):
        published, simulated = tables["Cray T3D"]
        for key in entries(tables, "Cray T3D"):
            tolerance = LOOSE.get(("Cray T3D", key), TOLERANCE)
            assert simulated[key] == pytest.approx(published[key], rel=tolerance), (
                f"{key}: simulated {simulated[key]:.1f} vs "
                f"published {published[key]:.1f}"
            )

    def test_paragon_every_entry_within_tolerance(self, tables):
        published, simulated = tables["Intel Paragon"]
        for key in entries(tables, "Intel Paragon"):
            tolerance = LOOSE.get(("Intel Paragon", key), TOLERANCE)
            assert simulated[key] == pytest.approx(published[key], rel=tolerance), (
                f"{key}: simulated {simulated[key]:.1f} vs "
                f"published {published[key]:.1f}"
            )

    def test_coverage_t3d(self, tables):
        """Every Table 1-3 figure for the T3D is actually simulated."""
        assert {
            "1C1", "1C64", "64C1", "1Cw", "wC1",
            "1S0", "64S0", "wS0",
            "0D1", "0D64", "0Dw",
            "Nd", "Nadp",
        } <= set(entries(tables, "Cray T3D"))

    def test_coverage_paragon(self, tables):
        assert {
            "1C1", "1C64", "64C1", "1Cw", "wC1",
            "1S0", "1F0", "64S0", "wS0",
            "0R1", "0R64", "0Rw", "0D1",
            "Nd", "Nadp",
        } <= set(entries(tables, "Intel Paragon"))


class TestQualitativeShape:
    """The asymmetries the paper's optimization advice rests on."""

    def test_t3d_strided_stores_beat_strided_loads(self, tables):
        __, simulated = tables["Cray T3D"]
        assert simulated["1C64"] > 1.5 * simulated["64C1"]

    def test_paragon_strided_loads_at_least_match_stores(self, tables):
        __, simulated = tables["Intel Paragon"]
        assert simulated["64C1"] >= 0.95 * simulated["1C64"]

    def test_paragon_indexed_loads_beat_strided_loads(self, tables):
        """Table 1's Paragon inversion: wC1 > 64C1."""
        __, simulated = tables["Intel Paragon"]
        assert simulated["wC1"] > simulated["64C1"]

    def test_t3d_indexed_and_strided_loads_comparable(self, tables):
        __, simulated = tables["Cray T3D"]
        assert simulated["wC1"] == pytest.approx(simulated["64C1"], rel=0.25)

    def test_send_faster_than_copy_for_contiguous_t3d(self, tables):
        """1S0 > 1C1: NI stores don't consume DRAM bandwidth."""
        __, simulated = tables["Cray T3D"]
        assert simulated["1S0"] > simulated["1C1"]

    def test_deposit_block_framing_advantage(self, tables):
        __, simulated = tables["Cray T3D"]
        assert simulated["0D1"] > 2 * simulated["0D64"]
        assert simulated["0D64"] == pytest.approx(simulated["0Dw"], rel=0.1)

    def test_paragon_dma_send_fastest(self, tables):
        __, simulated = tables["Intel Paragon"]
        assert simulated["1F0"] > 2 * simulated["1S0"]

    def test_contiguous_is_best_pattern_everywhere(self, tables):
        for name in ("Cray T3D", "Intel Paragon"):
            __, simulated = tables[name]
            assert simulated["1C1"] >= max(simulated["1C64"], simulated["64C1"])
