"""Tests for the model-accuracy assessment (repro.bench.accuracy)."""

import pytest

from repro.bench.accuracy import AccuracyCase, AccuracyReport, model_accuracy
from repro.core.operations import OperationStyle


def make_case(model, measured, operation="1Q1", style=OperationStyle.CHAINED):
    return AccuracyCase(
        operation=operation, style=style, model_mbps=model, measured_mbps=measured
    )


class TestReportStatistics:
    def test_ratio(self):
        assert make_case(40.0, 30.0).ratio == pytest.approx(0.75)

    def test_mean_and_worst(self):
        report = AccuracyReport(
            machine="x",
            cases=(make_case(10, 9), make_case(10, 5), make_case(10, 10)),
            ranking_agreements=3,
            ranking_total=3,
        )
        assert report.mean_ratio == pytest.approx(0.8)
        assert report.worst_overprediction == pytest.approx(0.5)
        assert report.overshoot_cases == 0
        assert report.ranking_accuracy == 1.0

    def test_overshoot_counted(self):
        report = AccuracyReport(
            machine="x",
            cases=(make_case(10, 12),),
            ranking_agreements=1,
            ranking_total=1,
        )
        assert report.overshoot_cases == 1

    def test_render(self):
        report = AccuracyReport(
            machine="Cray T3D",
            cases=(make_case(10, 8),),
            ranking_agreements=1,
            ranking_total=1,
        )
        text = report.render()
        assert "Cray T3D" in text
        assert "0.80" in text


class TestAssessment:
    def test_small_assessment_runs(self, t3d_machine):
        report = model_accuracy(t3d_machine, nbytes=32 * 1024)
        assert len(report.cases) == 32  # 4x4 grid x 2 styles
        assert report.ranking_total == 16
        assert 0 < report.mean_ratio <= 1.05

    def test_model_upper_bounds_measurements(self, t3d_machine):
        report = model_accuracy(t3d_machine, nbytes=32 * 1024)
        assert report.overshoot_cases <= 1

    def test_rankings_consistent(self, t3d_machine):
        report = model_accuracy(t3d_machine, nbytes=32 * 1024)
        assert report.ranking_accuracy == 1.0
