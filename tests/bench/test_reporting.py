"""Tests for the benchmark harness (repro.bench)."""

import pytest

from repro.bench import paperdata
from repro.bench.reporting import Comparison, all_within, max_ratio_error, render


class TestComparison:
    def test_ratio(self):
        assert Comparison("x", 50.0, 60.0).ratio == pytest.approx(1.2)

    def test_zero_paper_value_is_infinite_ratio(self):
        assert Comparison("x", 0.0, 1.0).ratio == float("inf")


class TestAggregates:
    def test_max_ratio_error_symmetric(self):
        """Being 2x high and 2x low are equally bad."""
        high = [Comparison("a", 10.0, 20.0)]
        low = [Comparison("a", 20.0, 10.0)]
        assert max_ratio_error(high) == pytest.approx(max_ratio_error(low))

    def test_perfect_match_is_zero(self):
        assert max_ratio_error([Comparison("a", 10.0, 10.0)]) == 0.0

    def test_all_within(self):
        rows = [Comparison("a", 10.0, 11.0), Comparison("b", 10.0, 9.5)]
        assert all_within(rows, 0.11)
        assert not all_within(rows, 0.05)


class TestRender:
    def test_render_contains_all_rows(self):
        rows = [Comparison("alpha", 1.0, 2.0), Comparison("beta", 3.0, 3.0)]
        text = render("Title", rows, note="a note")
        assert "Title" in text
        assert "alpha" in text and "beta" in text
        assert "a note" in text
        assert "2.00" in text  # the ratio column


class TestPaperData:
    """Sanity locks on the transcribed reference values."""

    def test_table1_machines_and_entries(self):
        assert set(paperdata.TABLE1_LOCAL_COPIES) == {
            "Cray T3D",
            "Intel Paragon",
        }
        for entries in paperdata.TABLE1_LOCAL_COPIES.values():
            assert set(entries) == {"1C1", "1C64", "64C1", "1Cw", "wC1"}

    def test_contiguous_is_best_in_table1(self):
        for entries in paperdata.TABLE1_LOCAL_COPIES.values():
            assert entries["1C1"] == max(entries.values())

    def test_table4_monotone_in_congestion(self):
        for machine in paperdata.TABLE4_NETWORK.values():
            for mode in machine.values():
                rates = [mode[c] for c in sorted(mode)]
                assert rates == sorted(rates, reverse=True)

    def test_chained_estimates_beat_packing(self):
        estimates = paperdata.SEC51_MODEL_ESTIMATES
        for (machine, op, style), value in estimates.items():
            if style != "chained":
                continue
            packing = estimates.get((machine, op, "buffer-packing"))
            if packing is not None:
                assert value > packing, (machine, op)

    def test_table5_chained_beats_packing_measured(self):
        for cell in paperdata.TABLE5.values():
            __, packing_measured = cell["buffer-packing"]
            __, chained_measured = cell["chained"]
            assert chained_measured > packing_measured

    def test_table6_orderings(self):
        for packing, chained, model in paperdata.TABLE6_T3D.values():
            assert packing < chained < model
