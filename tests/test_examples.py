"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Slow full-scale examples are exercised end to end — they
take a few seconds each, which is acceptable for the value of knowing
the quickstart actually works.
"""

import runpy
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "transpose_fft",
        "compiler_redistribution",
        "fem_earthquake",
        "airshed_redistribution",
        "design_a_machine",
    } <= names
