"""Tests for the communication advisor (repro.compiler.advisor)."""

import pytest

from repro.compiler import (
    Block,
    Cyclic,
    advise_plan,
    advise_transpose,
    redistribute_1d,
)
from repro.compiler.commgen import CommPlan
from repro.core.operations import OperationStyle


class TestAdvisePlan:
    def test_noncontiguous_plans_choose_chained(self, t3d_machine):
        plan = redistribute_1d(Block(4096, 16), Cyclic(4096, 16))
        advice = advise_plan(t3d_machine, plan)
        assert advice.dominant_style() is OperationStyle.CHAINED
        assert advice.style_histogram == {"chained": len(plan)}

    def test_gain_reported(self, t3d_machine):
        plan = redistribute_1d(Block(4096, 16), Cyclic(4096, 16))
        advice = advise_plan(t3d_machine, plan)
        assert all(entry.gain > 1.0 for entry in advice.per_op)

    def test_step_time_positive_and_consistent(self, t3d_machine):
        plan = redistribute_1d(Block(4096, 16), Cyclic(4096, 16))
        advice = advise_plan(t3d_machine, plan)
        # Rough consistency: bytes per node over rate.
        bytes_per_node = sum(
            op.nbytes for op in plan.ops if op.src == 0
        )
        upper = bytes_per_node / min(e.predicted_mbps for e in advice.per_op)
        assert 0 < advice.predicted_step_us <= upper + 1e-9

    def test_empty_plan_rejected(self, t3d_machine):
        with pytest.raises(ValueError):
            advise_plan(t3d_machine, CommPlan([], name="empty"))

    def test_render_lists_each_shape_once(self, t3d_machine):
        plan = redistribute_1d(Block(4096, 16), Cyclic(4096, 16))
        text = advise_plan(t3d_machine, plan).render()
        assert text.count("16Q1") == 1
        assert "predicted step time" in text


class TestAdviseTranspose:
    def test_section_52_t3d_prefers_strided_stores(self, t3d_machine):
        order, advice = advise_transpose(t3d_machine, 1024, 1024, 64, 2)
        assert order == "row"  # contiguous loads, strided stores: 1Qn
        assert advice.dominant_style() is OperationStyle.CHAINED

    def test_section_52_paragon_prefers_strided_loads(self, paragon_machine):
        order, __ = advise_transpose(paragon_machine, 1024, 1024, 64, 2)
        assert order == "col"  # strided loads, contiguous stores: nQ1

    def test_small_transposes_work(self, t3d_machine):
        order, advice = advise_transpose(t3d_machine, 64, 64, 8)
        assert order in ("row", "col")
        assert advice.predicted_step_us > 0
