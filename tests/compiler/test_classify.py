"""Tests for access-pattern classification (repro.compiler.classify)."""

import numpy as np
import pytest

from repro.compiler.classify import classify_offsets, effective_pattern
from repro.core.patterns import AccessPattern, strided


def classify(values):
    return classify_offsets(np.asarray(values, dtype=np.int64))


class TestClassifyOffsets:
    def test_single_element_contiguous(self):
        assert classify([7]).is_contiguous

    def test_contiguous_run(self):
        assert classify([4, 5, 6, 7]).is_contiguous

    def test_plain_stride(self):
        assert classify([0, 16, 32, 48]) == strided(16)

    def test_stride_two(self):
        assert classify([1, 3, 5, 7]) == strided(2)

    def test_blocked_stride(self):
        assert classify([0, 1, 16, 17, 32, 33]) == strided(16, block=2)

    def test_blocked_stride_wide(self):
        offsets = [0, 1, 2, 100, 101, 102, 200, 201, 202]
        assert classify(offsets) == strided(100, block=3)

    def test_blocked_with_short_tail_still_blocked(self):
        # A final partial block is tolerated.
        assert classify([0, 1, 16, 17, 32]) == strided(16, block=2)

    def test_irregular_is_indexed(self):
        assert classify([3, 1, 4, 1, 5]).is_indexed

    def test_unequal_runs_are_indexed(self):
        assert classify([0, 1, 2, 16, 17, 32]).is_indexed

    def test_descending_is_indexed(self):
        assert classify([10, 8, 6]).is_indexed

    def test_zero_diff_is_indexed(self):
        assert classify([5, 5, 5]).is_indexed

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify([])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            classify_offsets(np.zeros((2, 2), dtype=np.int64))


class TestEffectivePattern:
    def test_long_blocks_become_contiguous(self):
        assert effective_pattern(strided(2048, block=32)).is_contiguous

    def test_short_blocks_stay_strided(self):
        assert effective_pattern(strided(2048, block=2)) == strided(2048, block=2)

    def test_threshold_boundary(self):
        assert effective_pattern(strided(64, block=16)).is_contiguous
        assert effective_pattern(strided(64, block=15)) == strided(64, block=15)

    def test_non_strided_untouched(self):
        contiguous = AccessPattern.contiguous()
        indexed = AccessPattern.indexed()
        assert effective_pattern(contiguous) is contiguous
        assert effective_pattern(indexed) is indexed
