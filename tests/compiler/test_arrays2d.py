"""Tests for 2-D distributed arrays (repro.compiler.arrays2d)."""

import numpy as np
import pytest

from repro.compiler import (
    DistributedArray2D,
    execute_plan,
    redistribute_2d,
)
from repro.compiler.distributions import Block, Cyclic


def run_redistribution(data, src, dst):
    """Execute B = A through the 2-D plan, including the local parts."""
    plan = redistribute_2d(src, dst)
    src_locals = [src.local_array(data, p) for p in range(src.n_nodes)]
    dst_locals = [
        np.full(int(np.prod(dst.local_shape(p))), np.nan)
        for p in range(dst.n_nodes)
    ]
    execute_plan(plan, src_locals, dst_locals)
    for node in range(src.n_nodes):
        grid_row, grid_col = divmod(node, src.grid[1])
        rows = src.row_dist.local_indices(grid_row)
        cols = src.col_dist.local_indices(grid_col)
        if len(rows) == 0 or len(cols) == 0:
            continue
        stays = dst.owners(rows, cols) == node
        if stays.any():
            src_off = src.local_offsets(node, rows, cols)[stays]
            dst_off = dst.local_offsets(node, rows, cols)[stays]
            dst_locals[node][dst_off] = src_locals[node][src_off]
    return dst.assemble(dst_locals)


class TestGeometry:
    def test_shapes_and_grids(self):
        array = DistributedArray2D.tiles(32, 48, (4, 2))
        assert array.shape == (32, 48)
        assert array.grid == (4, 2)
        assert array.n_nodes == 8
        assert array.local_shape(0) == (8, 24)

    def test_node_ids_row_major(self):
        array = DistributedArray2D.tiles(16, 16, (2, 4))
        assert array.node_id(1, 2) == 6

    def test_row_panels_have_full_width(self):
        array = DistributedArray2D.row_panels(32, 48, 8)
        assert array.local_shape(3) == (4, 48)

    def test_local_array_roundtrip(self):
        array = DistributedArray2D.tiles(12, 12, (3, 2))
        data = np.arange(144.0).reshape(12, 12)
        locals_ = [array.local_array(data, p) for p in range(array.n_nodes)]
        assert np.array_equal(array.assemble(locals_), data)

    def test_owner_grid(self):
        array = DistributedArray2D.tiles(8, 8, (2, 2))
        owners = array.owners(np.arange(8), np.arange(8))
        assert owners[0, 0] == 0
        assert owners[7, 7] == 3
        assert owners[0, 7] == 1
        assert owners[7, 0] == 2


class TestRedistribution:
    def test_panels_to_panels_patterns(self):
        """(BLOCK,*) -> (*,BLOCK): the classic slice intersection.

        Each sender reads short row-fragments at the full row stride
        (blocked strided) and each receiver stores contiguously."""
        src = DistributedArray2D.row_panels(64, 64, 8)
        dst = DistributedArray2D.col_panels(64, 64, 8)
        plan = redistribute_2d(src, dst)
        assert len(plan) == 56  # all-to-all between panels
        op = plan.dominant_op()
        assert op.x.is_strided and op.x.stride == 64 and op.x.block == 8
        assert op.y.is_contiguous

    def test_identity_is_empty(self):
        array = DistributedArray2D.tiles(32, 32, (2, 2))
        assert len(redistribute_2d(array, array)) == 0

    def test_volume_conserved(self):
        src = DistributedArray2D.row_panels(32, 32, 4)
        dst = DistributedArray2D.col_panels(32, 32, 4)
        plan = redistribute_2d(src, dst)
        # Each node keeps its diagonal tile (8x8), ships the rest.
        assert sum(op.nwords for op in plan.ops) == 32 * 32 - 4 * 8 * 8

    @pytest.mark.parametrize(
        "src_factory,dst_factory",
        [
            (
                lambda: DistributedArray2D.row_panels(24, 36, 6),
                lambda: DistributedArray2D.col_panels(24, 36, 6),
            ),
            (
                lambda: DistributedArray2D.tiles(24, 36, (3, 2)),
                lambda: DistributedArray2D.tiles(24, 36, (2, 3)),
            ),
            (
                lambda: DistributedArray2D(Cyclic(24, 3), Block(36, 2)),
                lambda: DistributedArray2D(Block(24, 2), Cyclic(36, 3)),
            ),
        ],
    )
    def test_functional_correctness(self, src_factory, dst_factory):
        rng = np.random.default_rng(8)
        src, dst = src_factory(), dst_factory()
        data = rng.normal(size=src.shape)
        assert np.allclose(run_redistribution(data, src, dst), data)

    def test_cyclic_rows_produce_strided_traffic(self):
        src = DistributedArray2D(Cyclic(32, 4), Block(32, 1))
        dst = DistributedArray2D(Block(32, 4), Block(32, 1))
        plan = redistribute_2d(src, dst)
        assert len(plan) > 0
        # Whole rows move: long contiguous runs on both sides.
        assert all(op.x.is_contiguous for op in plan.ops)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            redistribute_2d(
                DistributedArray2D.row_panels(32, 32, 4),
                DistributedArray2D.row_panels(32, 16, 4),
            )

    def test_node_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="node-count"):
            redistribute_2d(
                DistributedArray2D.row_panels(32, 32, 4),
                DistributedArray2D.col_panels(32, 32, 8),
            )

    def test_element_words(self):
        src = DistributedArray2D.row_panels(16, 16, 4)
        dst = DistributedArray2D.col_panels(16, 16, 4)
        scalar = redistribute_2d(src, dst)
        complex_plan = redistribute_2d(src, dst, element_words=2)
        assert complex_plan.ops[0].nwords == 2 * scalar.ops[0].nwords
