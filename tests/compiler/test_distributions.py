"""Tests for HPF-style distributions (repro.compiler.distributions)."""

import numpy as np
import pytest

from repro.compiler.distributions import Block, BlockCyclic, Cyclic, Irregular

ALL_DISTS = [
    Block(100, 4),
    Cyclic(100, 4),
    BlockCyclic(100, 4, 8),
    Irregular((np.arange(100) * 7) % 4, 4),
]


class TestCommonInvariants:
    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
    def test_every_element_owned_exactly_once(self, dist):
        seen = np.concatenate(
            [dist.local_indices(p) for p in range(dist.n_nodes)]
        )
        assert sorted(seen.tolist()) == list(range(dist.extent))

    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
    def test_owner_consistent_with_local_indices(self, dist):
        for p in range(dist.n_nodes):
            owned = dist.local_indices(p)
            assert np.all(dist.owners(owned) == p)

    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
    def test_local_offsets_are_storage_positions(self, dist):
        for p in range(dist.n_nodes):
            owned = dist.local_indices(p)
            offsets = dist.local_offset(owned)
            assert sorted(offsets.tolist()) == list(range(len(owned)))

    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
    def test_scalar_owner(self, dist):
        assert dist.owner(0) == int(dist.owners(np.array([0]))[0])


class TestBlock:
    def test_layout(self):
        dist = Block(16, 4)
        assert dist.local_indices(0).tolist() == [0, 1, 2, 3]
        assert dist.local_indices(3).tolist() == [12, 13, 14, 15]

    def test_ragged_tail(self):
        dist = Block(10, 4)  # blocks of 3: 3,3,3,1
        assert dist.n_local(0) == 3
        assert dist.n_local(3) == 1


class TestCyclic:
    def test_layout(self):
        dist = Cyclic(8, 4)
        assert dist.local_indices(1).tolist() == [1, 5]
        assert dist.owner(6) == 2

    def test_local_offset(self):
        dist = Cyclic(16, 4)
        assert dist.local_offset(np.array([1, 5, 9])).tolist() == [0, 1, 2]


class TestBlockCyclic:
    def test_layout(self):
        dist = BlockCyclic(16, 2, 4)
        assert dist.local_indices(0).tolist() == [0, 1, 2, 3, 8, 9, 10, 11]

    def test_block_one_equals_cyclic(self):
        a = BlockCyclic(20, 4, 1)
        b = Cyclic(20, 4)
        for p in range(4):
            assert a.local_indices(p).tolist() == b.local_indices(p).tolist()

    def test_invalid_block_rejected(self):
        with pytest.raises(ValueError):
            BlockCyclic(16, 2, 0)


class TestIrregular:
    def test_explicit_map(self):
        dist = Irregular([0, 1, 1, 0, 2], 3)
        assert dist.local_indices(1).tolist() == [1, 2]
        assert dist.owner(4) == 2

    def test_out_of_range_map_rejected(self):
        with pytest.raises(ValueError):
            Irregular([0, 5], 3)


class TestValidation:
    def test_bad_extent(self):
        with pytest.raises(ValueError):
            Block(0, 4)

    def test_bad_node_count(self):
        with pytest.raises(ValueError):
            Cyclic(10, 0)

    def test_bad_node_query(self):
        with pytest.raises(ValueError):
            Block(10, 2).local_indices(2)
