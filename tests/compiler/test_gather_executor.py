"""Tests for indexed gather (Figure 2) and functional plan execution."""

import numpy as np
import pytest

from repro.compiler import (
    Block,
    Cyclic,
    execute_plan,
    indexed_gather,
    join_by_distribution,
    redistribute_1d,
    split_by_distribution,
)
from repro.compiler.commgen import CommOp, CommPlan
from repro.core.patterns import CONTIGUOUS


def run_redistribution(data, src_dist, dst_dist):
    """Execute B = A through the plan, including the local part."""
    plan = redistribute_1d(src_dist, dst_dist)
    src_locals = split_by_distribution(data, src_dist)
    dst_locals = [
        np.full(dst_dist.n_local(p), np.nan) for p in range(dst_dist.n_nodes)
    ]
    execute_plan(plan, src_locals, dst_locals)
    for p in range(src_dist.n_nodes):
        mine = src_dist.local_indices(p)
        stays = dst_dist.owners(mine) == p
        dst_locals[p][dst_dist.local_offset(mine[stays])] = src_locals[p][stays]
    return join_by_distribution(dst_locals, dst_dist)


class TestExecutePlan:
    @pytest.mark.parametrize(
        "src_factory,dst_factory",
        [
            (Block, Cyclic),
            (Cyclic, Block),
        ],
    )
    def test_redistribution_moves_exactly_the_right_data(
        self, src_factory, dst_factory
    ):
        rng = np.random.default_rng(3)
        data = rng.normal(size=120)
        out = run_redistribution(data, src_factory(120, 6), dst_factory(120, 6))
        assert np.array_equal(out, data)

    def test_ragged_extents(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=101)  # not divisible by 7
        out = run_redistribution(data, Block(101, 7), Cyclic(101, 7))
        assert np.array_equal(out, data)

    def test_plan_without_offsets_rejected(self):
        plan = CommPlan([CommOp(0, 1, CONTIGUOUS, CONTIGUOUS, 4)])
        with pytest.raises(ValueError, match="no offsets"):
            execute_plan(plan, [np.zeros(4)], [np.zeros(4), np.zeros(4)])

    def test_split_join_roundtrip(self):
        data = np.arange(50, dtype=float)
        dist = Cyclic(50, 4)
        assert np.array_equal(
            join_by_distribution(split_by_distribution(data, dist), dist), data
        )

    def test_split_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            split_by_distribution(np.zeros(10), Block(20, 2))


class TestIndexedGather:
    def test_permutation_gather_is_indexed_traffic(self):
        rng = np.random.default_rng(5)
        X = rng.permutation(256)
        plan = indexed_gather(Block(256, 8), Block(256, 8), X)
        histogram = plan.pattern_histogram()
        dominant = max(histogram, key=histogram.get)
        assert dominant == "wQw"

    def test_identity_index_produces_no_communication(self):
        X = np.arange(64)
        plan = indexed_gather(Block(64, 4), Block(64, 4), X)
        assert len(plan) == 0

    def test_gather_executes_correctly(self):
        """A = B[X] run through the plan equals the direct expression."""
        rng = np.random.default_rng(6)
        n = 144
        B = rng.normal(size=n)
        X = rng.permutation(n)
        a_dist, b_dist = Block(n, 6), Cyclic(n, 6)
        plan = indexed_gather(a_dist, b_dist, X)

        b_locals = split_by_distribution(B, b_dist)
        a_locals = [np.full(a_dist.n_local(p), np.nan) for p in range(6)]
        execute_plan(plan, b_locals, a_locals)
        # Local part: A elements whose B[X[i]] lives on the same node.
        positions = np.arange(n)
        same = a_dist.owners(positions) == b_dist.owners(X)
        for i in positions[same]:
            node = a_dist.owner(i)
            a_locals[node][a_dist.local_offset(np.array([i]))[0]] = b_locals[
                node
            ][b_dist.local_offset(np.array([X[i]]))[0]]
        A = join_by_distribution(a_locals, a_dist)
        assert np.array_equal(A, B[X])

    def test_duplicate_indices_allowed(self):
        """X need not be a permutation (broadcast-style gathers)."""
        X = np.zeros(32, dtype=int)  # everyone reads B[0]
        plan = indexed_gather(Block(32, 4), Block(32, 4), X)
        # B[0]'s owner (node 0) sends to the other three nodes.
        assert {op.src for op in plan.ops} == {0}
        assert {op.dst for op in plan.ops} == {1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError, match="extent"):
            indexed_gather(Block(10, 2), Block(10, 2), np.arange(5))
        with pytest.raises(ValueError, match="out of range"):
            indexed_gather(Block(4, 2), Block(4, 2), np.array([0, 1, 2, 9]))
        with pytest.raises(ValueError, match="node-count"):
            indexed_gather(Block(8, 2), Block(8, 4), np.arange(8))

    def test_words_conserved(self):
        rng = np.random.default_rng(7)
        X = rng.permutation(128)
        a_dist, b_dist = Block(128, 4), Block(128, 4)
        plan = indexed_gather(a_dist, b_dist, X)
        positions = np.arange(128)
        remote = (a_dist.owners(positions) != b_dist.owners(X)).sum()
        assert sum(op.nwords for op in plan.ops) == remote
