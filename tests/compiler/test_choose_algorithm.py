"""Model-driven collective-algorithm selection (the crossover tests).

The selector must reproduce the regime structure the model implies:
latency-bound small messages pick the few-round family, bandwidth-bound
large messages pick the few-byte family, and the pick is never worse
than any alternative under the selector's own cost model.
"""

import pytest

from repro.compiler.advisor import choose_algorithm
from repro.core.errors import ModelError
from repro.machines.registry import MACHINE_FACTORIES
from repro.runtime.collectives import ALGORITHMS, COLLECTIVE_OPS

SMALL = 1024
LARGE = 1 << 22
NODES = 16

#: op -> (few-round winner at SMALL, few-byte winner at LARGE).
CROSSOVER = {
    "broadcast": ("binomial-tree", "ring"),
    "allreduce": ("recursive-doubling", "ring"),
    "alltoall": ("bruck", "pairwise-exchange"),
}

MACHINES = ("t3d", "cluster", "xe")


def _machine(key):
    return MACHINE_FACTORIES[key]()


class TestCrossover:
    @pytest.mark.parametrize("key", MACHINES)
    @pytest.mark.parametrize("op", COLLECTIVE_OPS)
    def test_small_messages_pick_few_round_family(self, key, op):
        advice = choose_algorithm(op, _machine(key), SMALL, NODES)
        assert advice.algorithm == CROSSOVER[op][0]

    @pytest.mark.parametrize("key", MACHINES)
    @pytest.mark.parametrize("op", COLLECTIVE_OPS)
    def test_large_messages_pick_few_byte_family(self, key, op):
        advice = choose_algorithm(op, _machine(key), LARGE, NODES)
        assert advice.algorithm == CROSSOVER[op][1]

    @pytest.mark.parametrize("key", MACHINES)
    @pytest.mark.parametrize("op", COLLECTIVE_OPS)
    @pytest.mark.parametrize("nbytes", [SMALL, 65536, LARGE])
    def test_selected_never_worse_than_alternatives(self, key, op, nbytes):
        advice = choose_algorithm(op, _machine(key), nbytes, NODES)
        assert set(advice.per_algorithm) == set(ALGORITHMS[op])
        assert advice.predicted_ns == advice.per_algorithm[advice.algorithm]
        assert advice.predicted_ns == min(advice.per_algorithm.values())

    def test_cluster_goes_hierarchical(self):
        advice = choose_algorithm(
            "broadcast", _machine("cluster"), LARGE, NODES
        )
        assert advice.hierarchical

    def test_flat_machines_stay_flat(self):
        advice = choose_algorithm("broadcast", _machine("t3d"), LARGE, NODES)
        assert not advice.hierarchical

    def test_unknown_op_rejected(self):
        with pytest.raises(ModelError):
            choose_algorithm("reduce", _machine("t3d"), SMALL, NODES)
