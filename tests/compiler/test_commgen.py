"""Tests for communication-set generation (repro.compiler.commgen)."""

import numpy as np
import pytest

from repro.compiler.commgen import CommOp, CommPlan, redistribute_1d, transpose_2d
from repro.compiler.distributions import Block, BlockCyclic, Cyclic, Irregular
from repro.core.patterns import CONTIGUOUS, strided


class TestRedistribute:
    def test_identity_redistribution_is_empty(self):
        plan = redistribute_1d(Block(64, 4), Block(64, 4))
        assert len(plan) == 0

    def test_block_to_cyclic_patterns(self):
        plan = redistribute_1d(Block(64, 4), Cyclic(64, 4))
        # Sender reads every 4th local element; receiver writes a
        # contiguous run of its cyclic storage.
        assert plan.pattern_histogram() == {"4Q1": 12}

    def test_cyclic_to_block_patterns(self):
        plan = redistribute_1d(Cyclic(64, 4), Block(64, 4))
        assert plan.pattern_histogram() == {"1Q4": 12}

    def test_word_conservation(self):
        src, dst = Block(60, 4), Cyclic(60, 4)
        plan = redistribute_1d(src, dst)
        moved = sum(op.nwords for op in plan.ops)
        # Elements that change owner:
        stay = sum(
            int(np.sum(dst.owners(src.local_indices(p)) == p)) for p in range(4)
        )
        assert moved == 60 - stay

    def test_irregular_destination_is_indexed(self):
        rng = np.random.default_rng(1)
        node_map = rng.integers(0, 4, size=128)
        plan = redistribute_1d(Block(128, 4), Irregular(node_map, 4))
        patterns = {op.x.subscript for op in plan.ops}
        assert patterns == {"w"}

    def test_element_words_scale_payload_and_stride(self):
        scalar = redistribute_1d(Block(64, 4), Cyclic(64, 4))
        complex_plan = redistribute_1d(
            Block(64, 4), Cyclic(64, 4), element_words=2
        )
        assert complex_plan.ops[0].nwords == 2 * scalar.ops[0].nwords
        assert complex_plan.ops[0].x == strided(8, block=2)

    def test_mismatched_extents_rejected(self):
        with pytest.raises(ValueError):
            redistribute_1d(Block(64, 4), Block(32, 4))

    def test_mismatched_nodes_rejected(self):
        with pytest.raises(ValueError):
            redistribute_1d(Block(64, 4), Block(64, 8))

    def test_block_cyclic_round_trip_shapes(self):
        plan = redistribute_1d(BlockCyclic(64, 4, 4), Block(64, 4))
        assert len(plan) > 0
        for op in plan.ops:
            assert op.nwords > 0


class TestTranspose:
    def test_is_all_to_all(self):
        plan = transpose_2d(64, 64, 8)
        assert len(plan) == 8 * 7
        assert set(plan.flows()) == {
            (s, d) for s in range(8) for d in range(8) if s != d
        }

    def test_row_order_is_1qn(self):
        plan = transpose_2d(1024, 1024, 64, element_words=2, loop_order="row")
        op = plan.dominant_op()
        assert op.x.is_contiguous  # long patch rows read as streams
        assert op.y == strided(2048, block=2)

    def test_col_order_is_nq1(self):
        plan = transpose_2d(1024, 1024, 64, element_words=2, loop_order="col")
        op = plan.dominant_op()
        assert op.x == strided(2048, block=2)
        assert op.y.is_contiguous

    def test_patch_size(self):
        plan = transpose_2d(1024, 1024, 64, element_words=2)
        assert plan.dominant_op().nwords == 16 * 16 * 2

    def test_total_volume(self):
        plan = transpose_2d(256, 256, 16)
        off_diagonal = 256 * 256 - 16 * (16 * 16)
        assert sum(op.nwords for op in plan.ops) == off_diagonal

    def test_invalid_partition_rejected(self):
        with pytest.raises(ValueError):
            transpose_2d(100, 100, 8)

    def test_invalid_loop_order_rejected(self):
        with pytest.raises(ValueError):
            transpose_2d(64, 64, 8, loop_order="diagonal")


class TestCommPlan:
    def test_dominant_op_of_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            CommPlan([], name="empty").dominant_op()

    def test_dominant_op_majority(self):
        ops = [
            CommOp(0, 1, CONTIGUOUS, CONTIGUOUS, 100),
            CommOp(1, 2, CONTIGUOUS, CONTIGUOUS, 200),
            CommOp(2, 3, CONTIGUOUS, strided(4), 500),
        ]
        plan = CommPlan(ops)
        dominant = plan.dominant_op()
        assert dominant.notation == "1Q1"
        assert dominant.nwords == 150  # mean of the majority shape

    def test_messages_from(self):
        plan = transpose_2d(64, 64, 4)
        assert len(plan.messages_from(2)) == 3

    def test_nbytes(self):
        op = CommOp(0, 1, CONTIGUOUS, CONTIGUOUS, 10)
        assert op.nbytes == 80
