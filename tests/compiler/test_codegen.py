"""Tests for pseudo-code emission (repro.compiler.codegen)."""

import pytest

from repro.compiler import emit_pseudocode
from repro.core.operations import CommCapabilities, DepositSupport, OperationStyle
from repro.core.patterns import CONTIGUOUS, INDEXED, strided

T3D = CommCapabilities(deposit=DepositSupport.ANY)
PARAGON = CommCapabilities(
    deposit=DepositSupport.CONTIGUOUS, dma_send=True, coprocessor_receive=True
)
BARE = CommCapabilities(deposit=DepositSupport.NONE)


def loops(text):
    return text.count("for i = 0 ..")


class TestPackingCode:
    def test_three_software_loops_plus_deposit(self):
        text = emit_pseudocode(
            strided(64), INDEXED, OperationStyle.BUFFER_PACKING, T3D
        )
        # gather + send + scatter: the data is touched three times.
        assert loops(text) == 3
        assert "pack into buffer" in text
        assert "unpack from buffer" in text

    def test_paragon_uses_dma_not_a_send_loop(self):
        text = emit_pseudocode(
            CONTIGUOUS, CONTIGUOUS, OperationStyle.BUFFER_PACKING, PARAGON
        )
        assert "dma_setup" in text
        sender_half = text.split("-- receiver --")[0]
        assert "NI_FIFO" not in sender_half  # the DMA feeds the wire
        assert loops(text) == 2  # gather + scatter (PVM semantics)

    def test_bare_machine_drains_fifo_in_software(self):
        text = emit_pseudocode(
            CONTIGUOUS, CONTIGUOUS, OperationStyle.BUFFER_PACKING, BARE
        )
        assert "receive-store 0R1" in text

    def test_indexed_patterns_read_the_index_array(self):
        text = emit_pseudocode(
            INDEXED, CONTIGUOUS, OperationStyle.BUFFER_PACKING, T3D
        )
        assert "load X[i]" in text


class TestChainedCode:
    def test_single_loop_on_the_sender(self):
        text = emit_pseudocode(
            strided(64), strided(64), OperationStyle.CHAINED, T3D
        )
        assert loops(text) == 1
        assert "ANNEX" in text
        assert "Nadp" in text

    def test_contiguous_uses_block_framing(self):
        text = emit_pseudocode(CONTIGUOUS, CONTIGUOUS, OperationStyle.CHAINED, T3D)
        assert "Nd" in text
        assert "Nadp" not in text

    def test_paragon_coprocessor_loop(self):
        text = emit_pseudocode(
            strided(64), strided(64), OperationStyle.CHAINED, PARAGON
        )
        assert "co-processor" in text
        assert loops(text) == 2  # sender loop + co-processor loop

    def test_strided_addressing_shows_the_stride(self):
        text = emit_pseudocode(
            strided(64), CONTIGUOUS, OperationStyle.CHAINED, T3D
        )
        assert "*512" in text  # stride 64 words = 512 bytes

    def test_blocked_stride_addressing(self):
        text = emit_pseudocode(
            strided(64, block=2), CONTIGUOUS, OperationStyle.CHAINED, T3D
        )
        assert "(i/2)" in text and "(i%2)" in text

    def test_infeasible_receiver_is_stated(self):
        text = emit_pseudocode(
            CONTIGUOUS, strided(64), OperationStyle.CHAINED, BARE
        )
        assert "infeasible" in text
