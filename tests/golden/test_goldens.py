"""Golden-value regression tests.

Every committed golden under ``tests/golden/data/`` is regenerated
from the live library and compared cell by cell.  A failure means our
own numbers moved — see :mod:`repro.bench.goldens` for when that is
fine (intentional change: regenerate and commit) and when it is a bug
(everything else).
"""

import os

import pytest

from repro.bench.goldens import (
    GOLDEN_JSON_TARGETS,
    GOLDEN_SCHEMA,
    GOLDEN_TARGETS,
    compare_values,
    golden_dir,
    golden_path,
    json_diff,
    load_golden,
    load_json_golden,
    render_mismatches,
)

ALL_TARGETS = sorted(GOLDEN_TARGETS)
ALL_JSON_TARGETS = sorted(GOLDEN_JSON_TARGETS)


def test_every_target_has_a_committed_golden():
    missing = [
        name
        for name in ALL_TARGETS + ALL_JSON_TARGETS
        if not os.path.exists(golden_path(name))
    ]
    assert not missing, (
        f"no committed golden for {missing}; run "
        "`PYTHONPATH=src python scripts/regen_goldens.py` and commit "
        "tests/golden/data/"
    )


def test_no_orphan_golden_files():
    committed = {
        os.path.splitext(entry)[0]
        for entry in os.listdir(golden_dir())
        if entry.endswith(".json")
    }
    orphans = sorted(committed - set(ALL_TARGETS) - set(ALL_JSON_TARGETS))
    assert not orphans, (
        f"golden files {orphans} have no generator in "
        "repro.bench.goldens.GOLDEN_TARGETS or GOLDEN_JSON_TARGETS"
    )


def test_registries_do_not_collide():
    assert not set(GOLDEN_TARGETS) & set(GOLDEN_JSON_TARGETS)


@pytest.mark.parametrize("name", ALL_TARGETS)
def test_golden_values_unchanged(name):
    golden = load_golden(name)
    assert golden["schema"] == GOLDEN_SCHEMA
    assert golden["name"] == name
    assert golden["values"], f"golden {name!r} is empty"
    fresh = GOLDEN_TARGETS[name]()
    problems = compare_values(golden, fresh)
    assert not problems, render_mismatches(name, problems)


@pytest.mark.parametrize("name", ALL_JSON_TARGETS)
def test_json_golden_payload_unchanged(name):
    golden = load_json_golden(name)
    assert golden["schema"] == "repro-verify-report/1"
    fresh = GOLDEN_JSON_TARGETS[name]()
    problems = json_diff(golden, fresh)
    assert not problems, (
        f"golden {name!r} drifted (regenerate with scripts/regen_goldens.py "
        f"if intentional):\n" + "\n".join(problems)
    )


def test_json_diff_reports_shape_and_value_changes():
    expected = {"a": [1, 2.5], "b": {"c": "x"}, "ok": True}
    assert json_diff(expected, {"a": [1, 2.5], "b": {"c": "x"}, "ok": True}) == []
    problems = json_diff(expected, {"a": [1], "b": {"c": "y", "d": 0}, "ok": 1})
    text = "\n".join(problems)
    assert "$.a: length 1" in text
    assert "$.b.c" in text and "expected 'x'" in text
    assert "$.b.d: unexpected" in text
    assert "$.ok" in text  # bool vs int is a type change


def test_compare_reports_drift_missing_and_unexpected():
    golden = {
        "schema": GOLDEN_SCHEMA,
        "name": "synthetic",
        "rel_tol": 1e-6,
        "tolerances": {"loose": 0.5},
        "values": {"stable": 100.0, "drifted": 50.0, "gone": 1.0,
                   "loose": 10.0},
    }
    fresh = {"stable": 100.0, "drifted": 51.0, "new": 2.0, "loose": 12.0}
    problems = dict(compare_values(golden, fresh))
    assert "gone" in problems and "missing" in problems["gone"]
    assert "new" in problems and "unexpected" in problems["new"]
    assert "drifted" in problems and "+2.0000%" in problems["drifted"]
    # per-cell tolerance override: 20% drift inside a 0.5 rel_tol is fine
    assert "loose" not in problems
    assert "stable" not in problems
    report = render_mismatches("synthetic", compare_values(golden, fresh))
    assert "regen_goldens.py" in report and "drifted" in report
