"""Tests for the set-associative cache (repro.memsim.cache)."""

import pytest

from repro.memsim.cache import Cache
from repro.memsim.config import CacheConfig


def direct_mapped(size=256, line=32):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line, associativity=1))


def four_way(size=512, line=32):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line, associativity=4))


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = direct_mapped()
        assert not cache.lookup_load(0)
        assert cache.lookup_load(0)
        assert cache.lookup_load(24)  # same 32-byte line

    def test_different_line_misses(self):
        cache = direct_mapped()
        cache.lookup_load(0)
        assert not cache.lookup_load(32)

    def test_hit_rate_accounting(self):
        cache = direct_mapped()
        cache.lookup_load(0)
        cache.lookup_load(8)
        assert cache.hit_rate == 0.5

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig(size_bytes=100, line_bytes=32))
        with pytest.raises(ValueError):
            Cache(CacheConfig(size_bytes=96, line_bytes=32, associativity=2))


class TestDirectMappedConflicts:
    def test_aliasing_addresses_evict(self):
        cache = direct_mapped(size=256, line=32)  # 8 lines, 8 sets
        cache.lookup_load(0)
        cache.lookup_load(256)  # same set, different tag: evicts
        assert not cache.lookup_load(0)

    def test_non_aliasing_addresses_coexist(self):
        cache = direct_mapped(size=256, line=32)
        cache.lookup_load(0)
        cache.lookup_load(32)
        assert cache.lookup_load(0)
        assert cache.lookup_load(32)


class TestAssociativity:
    def test_four_way_tolerates_four_aliases(self):
        cache = four_way(size=512, line=32)  # 16 lines, 4 sets
        set_stride = 4 * 32  # same set every 128 bytes
        for i in range(4):
            cache.lookup_load(i * set_stride * 4)
        for i in range(4):
            assert cache.lookup_load(i * set_stride * 4)

    def test_lru_evicts_oldest(self):
        cache = four_way(size=512, line=32)
        addresses = [i * 512 for i in range(5)]  # 5 aliases into one set
        for address in addresses:
            cache.lookup_load(address)
        assert not cache.lookup_load(addresses[0])  # evicted (LRU)
        assert cache.lookup_load(addresses[4])

    def test_lru_refresh_on_hit(self):
        cache = four_way(size=512, line=32)
        addresses = [i * 512 for i in range(4)]
        for address in addresses:
            cache.lookup_load(address)
        cache.lookup_load(addresses[0])  # refresh line 0
        cache.lookup_load(4 * 512)       # evicts line 1, not line 0
        assert cache.lookup_load(addresses[0])
        assert not cache.lookup_load(addresses[1])


class TestStores:
    def test_store_never_allocates(self):
        cache = direct_mapped()
        assert not cache.lookup_store(0)
        assert not cache.lookup_load(0)  # still a load miss afterwards

    def test_store_hits_present_line(self):
        cache = direct_mapped()
        cache.lookup_load(0)
        assert cache.lookup_store(8)


class TestInvalidation:
    def test_invalidate_all(self):
        cache = direct_mapped()
        cache.lookup_load(0)
        cache.invalidate_all()
        assert not cache.lookup_load(0)

    def test_reset_clears_statistics(self):
        cache = direct_mapped()
        cache.lookup_load(0)
        cache.reset()
        assert cache.hits == 0
        assert cache.misses == 0
