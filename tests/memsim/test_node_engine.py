"""Engine selection and result memoization in NodeMemorySystem."""

import pytest

from repro.core.patterns import CONTIGUOUS, strided
from repro.machines import t3d
from repro.memsim.config import CacheConfig, NodeConfig
from repro.memsim.fastpath import FastpathUnsupported
from repro.memsim.node import ENGINE_ENV, NodeMemorySystem


@pytest.fixture(autouse=True)
def _no_engine_env(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)


@pytest.fixture
def node_config():
    return t3d().node


def _small(config, **kwargs):
    return NodeMemorySystem(config, nwords=2048, **kwargs)


class TestEngineSelection:
    def test_invalid_engine_rejected(self, node_config):
        with pytest.raises(ValueError):
            _small(node_config, engine="turbo")

    def test_auto_uses_fast_path_for_supported_config(self, node_config):
        node = _small(node_config)
        node.measure_copy(CONTIGUOUS, strided(8))
        assert node.last_engine == "fast"

    def test_scalar_engine_forces_the_oracle(self, node_config):
        node = _small(node_config, engine="scalar")
        node.measure_copy(CONTIGUOUS, strided(8))
        assert node.last_engine == "scalar"

    def test_engines_agree(self, node_config):
        fast = _small(node_config, engine="fast")
        scalar = _small(node_config, engine="scalar")
        a = fast.measure_copy(CONTIGUOUS, strided(8))
        b = scalar.measure_copy(CONTIGUOUS, strided(8))
        assert a == pytest.approx(b, rel=1e-9)

    def test_auto_falls_back_outside_the_envelope(self):
        config = NodeConfig(cache=CacheConfig(write_policy="back"))
        node = _small(config)
        node.measure_copy(CONTIGUOUS, CONTIGUOUS)
        assert node.last_engine == "scalar"

    def test_auto_fallback_is_counted(self):
        config = NodeConfig(cache=CacheConfig(write_policy="back"))
        node = _small(config)
        assert node.fastpath_fallbacks == 0
        node.measure_copy(CONTIGUOUS, CONTIGUOUS)
        assert node.fastpath_fallbacks == 1
        # A memoized repeat must not recount.
        node.measure_copy(CONTIGUOUS, CONTIGUOUS)
        assert node.fastpath_fallbacks == 1
        node.measure_copy(CONTIGUOUS, strided(8))
        assert node.fastpath_fallbacks == 2

    def test_auto_fallback_emits_trace_counter(self):
        from repro.trace import tracing

        config = NodeConfig(cache=CacheConfig(write_policy="back"))
        node = _small(config)
        with tracing() as tracer:
            node.measure_copy(CONTIGUOUS, CONTIGUOUS)
        counters = tracer.metrics.counters()
        assert counters.get("memsim.fastpath_unsupported") == 1
        assert counters.get("memsim.engine.scalar") == 1

    def test_auto_fallback_matches_scalar_engine_exactly(self):
        config = NodeConfig(cache=CacheConfig(write_policy="back"))
        auto = _small(config)
        scalar = _small(config, engine="scalar")
        for read, write in (
            (CONTIGUOUS, CONTIGUOUS),
            (CONTIGUOUS, strided(8)),
            (strided(16), CONTIGUOUS),
        ):
            assert auto.measure_copy(read, write) == scalar.measure_copy(
                read, write
            )
            assert auto.last_engine == "scalar"
        assert auto.measure_load_send(strided(8)) == scalar.measure_load_send(
            strided(8)
        )
        assert auto.measure_receive_store(
            strided(8)
        ) == scalar.measure_receive_store(strided(8))

    def test_supported_config_never_counts_fallbacks(self, node_config):
        node = _small(node_config)
        node.measure_copy(CONTIGUOUS, strided(8))
        assert node.last_engine == "fast"
        assert node.fastpath_fallbacks == 0

    def test_fast_mode_raises_outside_the_envelope(self):
        config = NodeConfig(cache=CacheConfig(write_policy="back"))
        node = _small(config, engine="fast")
        with pytest.raises(FastpathUnsupported):
            node.measure_copy(CONTIGUOUS, CONTIGUOUS)

    def test_env_var_overrides_instance_engine(
        self, node_config, monkeypatch
    ):
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        node = _small(node_config, engine="fast")
        node.measure_copy(CONTIGUOUS, strided(8))
        assert node.last_engine == "scalar"

    def test_bogus_env_var_rejected(self, node_config, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "warp")
        node = _small(node_config)
        with pytest.raises(ValueError):
            node.measure_copy(CONTIGUOUS, CONTIGUOUS)


class TestMemoization:
    def test_repeat_measurement_is_a_dict_lookup(self, node_config):
        node = _small(node_config)
        first = node.copy_result(CONTIGUOUS, strided(8))
        node.last_engine = None
        second = node.copy_result(CONTIGUOUS, strided(8))
        assert second is first
        assert node.last_engine is None  # no engine ran

    def test_clear_cache_remeasures(self, node_config):
        node = _small(node_config)
        first = node.copy_result(CONTIGUOUS, strided(8))
        node.clear_cache()
        second = node.copy_result(CONTIGUOUS, strided(8))
        assert second is not first
        assert second.ns == first.ns

    def test_memoization_is_engine_aware(self, node_config, monkeypatch):
        node = _small(node_config)
        fast = node.copy_result(CONTIGUOUS, strided(8))
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        scalar = node.copy_result(CONTIGUOUS, strided(8))
        assert scalar is not fast
        assert node.last_engine == "scalar"

    def test_memo_keys_on_engine_actually_used(
        self, node_config, monkeypatch
    ):
        """Toggling REPRO_MEMSIM_ENGINE must serve the memo of the
        engine that produced the value, never re-simulate it under a
        different requested mode (regression: the memo used to key on
        the requested mode, so auto-produced results were invisible to
        fast/scalar mode and vice versa)."""
        node = _small(node_config)
        auto = node.copy_result(CONTIGUOUS, strided(8))  # auto -> fast
        assert node.last_engine == "fast"
        node.last_engine = None
        monkeypatch.setenv(ENGINE_ENV, "fast")
        forced = node.copy_result(CONTIGUOUS, strided(8))
        assert forced is auto  # shared entry: no re-simulation
        assert node.last_engine is None  # served from the memo
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        scalar = node.copy_result(CONTIGUOUS, strided(8))
        assert scalar is not auto  # scalar never computed this value
        assert node.last_engine == "scalar"
        node.last_engine = None
        monkeypatch.delenv(ENGINE_ENV)
        again = node.copy_result(CONTIGUOUS, strided(8))  # auto again
        assert again is auto
        assert node.last_engine is None

    def test_auto_fallback_shares_scalar_memo(self, monkeypatch):
        """On a fast-unsupported config, auto's fallback result and a
        forced-scalar query are one memo entry in both directions."""
        config = NodeConfig(cache=CacheConfig(write_policy="back"))
        node = _small(config)
        fallback = node.copy_result(CONTIGUOUS, CONTIGUOUS)
        assert node.last_engine == "scalar"
        node.last_engine = None
        monkeypatch.setenv(ENGINE_ENV, "scalar")
        forced = node.copy_result(CONTIGUOUS, CONTIGUOUS)
        assert forced is fallback
        assert node.last_engine is None

    def test_clear_cache_forgets_fast_rejections(self):
        config = NodeConfig(cache=CacheConfig(write_policy="back"))
        node = _small(config)
        node.copy_result(CONTIGUOUS, CONTIGUOUS)
        assert node.fastpath_fallbacks == 1
        node.clear_cache()
        node.copy_result(CONTIGUOUS, CONTIGUOUS)
        assert node.fastpath_fallbacks == 2  # re-attempted, re-counted
