"""Unit tests for the vectorized fast path (repro.memsim.fastpath).

Broad randomized parity with the scalar oracle lives in
``tests/properties/test_fastpath_parity.py``; these tests pin the
envelope boundaries, edge cases and engine-selection plumbing that a
random sweep might visit only occasionally.
"""

import numpy as np
import pytest

from repro.core.patterns import CONTIGUOUS, INDEXED, AccessPattern, strided
from repro.machines import paragon, t3d
from repro.memsim.config import (
    CacheConfig,
    NodeConfig,
    ReadAheadConfig,
    WriteBufferConfig,
)
from repro.memsim.engine import MemoryEngine
from repro.memsim.fastpath import FastEngine, FastpathUnsupported
from repro.memsim.streams import AccessStream, make_stream

GAP = (1 << 24) + 256


def _pair(pattern, nwords, index_run=2):
    read = make_stream(pattern, nwords, base=0, seed=7, index_run=index_run)
    write = make_stream(
        pattern, nwords, base=GAP, seed=8, index_run=index_run
    )
    return read, write


def _assert_match(ref, fast):
    assert fast.nwords == ref.nwords
    assert fast.ns == pytest.approx(ref.ns, rel=1e-9)
    assert fast.cache_hit_rate == pytest.approx(
        ref.cache_hit_rate, rel=1e-12, abs=1e-15
    )
    assert fast.dram_page_hit_rate == pytest.approx(
        ref.dram_page_hit_rate, rel=1e-12, abs=1e-15
    )


class TestEnvelope:
    def test_write_back_policy_stays_on_the_oracle(self):
        node = NodeConfig(cache=CacheConfig(write_policy="back"))
        with pytest.raises(FastpathUnsupported):
            FastEngine(node)

    def test_extreme_write_buffer_depth_rejected(self):
        node = NodeConfig(write_buffer=WriteBufferConfig(depth=256))
        with pytest.raises(FastpathUnsupported):
            FastEngine(node)

    def test_extreme_readahead_depth_rejected(self):
        node = NodeConfig(
            read_ahead=ReadAheadConfig(enabled=True, depth=17)
        )
        with pytest.raises(FastpathUnsupported):
            FastEngine(node)

    def test_disabled_readahead_depth_is_irrelevant(self):
        node = NodeConfig(
            read_ahead=ReadAheadConfig(enabled=False, depth=1000)
        )
        FastEngine(node)  # must not raise

    def test_shipped_machines_qualify(self):
        for machine in (t3d(), paragon()):
            FastEngine(machine.node)  # must not raise


class TestEdgeCases:
    @pytest.mark.parametrize("machine_factory", [t3d, paragon])
    @pytest.mark.parametrize("nwords", [1, 2, 5])
    def test_tiny_streams_match_oracle(self, machine_factory, nwords):
        machine = machine_factory()
        ref = MemoryEngine(machine.node)
        fast = FastEngine(machine.node)
        read, write = _pair(CONTIGUOUS, nwords, machine.index_run)
        _assert_match(ref.run_copy(read, write), fast.run_copy(read, write))
        _assert_match(
            ref.run_store_stream(write), fast.run_store_stream(write)
        )

    def test_mismatched_copy_lengths_rejected(self):
        fast = FastEngine(t3d().node)
        read, _ = _pair(CONTIGUOUS, 8)
        _, write = _pair(CONTIGUOUS, 16)
        with pytest.raises(ValueError):
            fast.run_copy(read, write)

    def test_empty_stream_is_free(self):
        fast = FastEngine(t3d().node)
        empty = AccessStream(
            pattern=AccessPattern.contiguous(),
            addresses=np.empty(0, dtype=np.int64),
        )
        result = fast.run_load_stream(empty)
        assert result.ns == 0.0
        assert result.nwords == 0

    def test_occupancy_scale_matches_oracle(self):
        node = paragon().node
        ref = MemoryEngine(node, occupancy_scale=1.7)
        fast = FastEngine(node, occupancy_scale=1.7)
        read, write = _pair(strided(8), 512)
        _assert_match(ref.run_copy(read, write), fast.run_copy(read, write))


class TestKernelSweep:
    """One deterministic mid-size case per kernel per machine."""

    @pytest.mark.parametrize("machine_factory", [t3d, paragon])
    @pytest.mark.parametrize(
        "pattern", [CONTIGUOUS, strided(4), strided(64), INDEXED]
    )
    def test_all_kernels(self, machine_factory, pattern):
        machine = machine_factory()
        ref = MemoryEngine(machine.node)
        fast = FastEngine(machine.node)
        read, write = _pair(pattern, 1024, machine.index_run)
        _assert_match(
            ref.run_load_stream(read), fast.run_load_stream(read)
        )
        _assert_match(
            ref.run_store_stream(write), fast.run_store_stream(write)
        )
        _assert_match(ref.run_copy(read, write), fast.run_copy(read, write))
        _assert_match(
            ref.run_load_send(read), fast.run_load_send(read)
        )
        _assert_match(
            ref.run_receive_store(write), fast.run_receive_store(write)
        )
        if machine.node.deposit.supports(pattern.is_contiguous):
            _assert_match(
                ref.run_deposit(write), fast.run_deposit(write)
            )
