"""Tests for the memory-system timeline engine (repro.memsim.engine).

Functional behaviour and the *qualitative* microarchitecture effects;
quantitative calibration against the paper's tables is covered in
tests/machines/.
"""

import pytest

from dataclasses import replace

from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.machines import paragon_node_config, t3d_node_config
from repro.memsim.config import DepositConfig, DMAConfig
from repro.memsim.engine import MemoryEngine
from repro.memsim.streams import make_stream

N = 2048


def run_copy(node, read_pattern, write_pattern, nwords=N, index_run=2):
    engine = MemoryEngine(node)
    read = make_stream(read_pattern, nwords, base=0, seed=1, index_run=index_run)
    write = make_stream(
        write_pattern, nwords, base=(1 << 24) + 256, seed=2, index_run=index_run
    )
    return engine.run_copy(read, write)


class TestKernelResults:
    def test_mbps_consistent_with_time(self, t3d_machine):
        result = run_copy(t3d_machine.node, CONTIGUOUS, CONTIGUOUS)
        assert result.mbps == pytest.approx(result.nwords * 8 / result.ns * 1000)

    def test_mismatched_streams_rejected(self, t3d_machine):
        engine = MemoryEngine(t3d_machine.node)
        with pytest.raises(ValueError):
            engine.run_copy(
                make_stream(CONTIGUOUS, 8), make_stream(CONTIGUOUS, 16)
            )

    def test_statistics_populated(self, t3d_machine):
        result = run_copy(t3d_machine.node, CONTIGUOUS, CONTIGUOUS)
        assert 0 < result.dram_page_hit_rate < 1
        assert 0 < result.cache_hit_rate < 1


class TestMicroarchitectureEffects:
    def test_t3d_strided_stores_beat_strided_loads(self, t3d_machine):
        """The write-back queue posts stores; blocking loads stall."""
        stores = run_copy(t3d_machine.node, CONTIGUOUS, strided(64))
        loads = run_copy(t3d_machine.node, strided(64), CONTIGUOUS)
        assert stores.mbps > 1.5 * loads.mbps

    def test_paragon_strided_loads_at_least_match_stores(self, paragon_machine):
        """Pipelined loads pay occupancy; write-through stores pay misses."""
        stores = run_copy(paragon_machine.node, CONTIGUOUS, strided(64))
        loads = run_copy(paragon_machine.node, strided(64), CONTIGUOUS)
        assert loads.mbps >= stores.mbps

    def test_contiguous_fastest_on_both(self, machine):
        base = run_copy(machine.node, CONTIGUOUS, CONTIGUOUS)
        for pattern in (strided(64), INDEXED):
            assert base.mbps > run_copy(machine.node, CONTIGUOUS, pattern).mbps
            assert base.mbps > run_copy(machine.node, pattern, CONTIGUOUS).mbps

    def test_rdal_accelerates_pure_load_streams_only(self, t3d_machine):
        """1S0 beats the load half of 1C1: read-ahead survives on pure
        load streams but is broken by interleaved DRAM writes."""
        engine = MemoryEngine(t3d_machine.node)
        send = engine.run_load_send(make_stream(CONTIGUOUS, N))
        copy = run_copy(t3d_machine.node, CONTIGUOUS, CONTIGUOUS)
        assert send.mbps > copy.mbps

    def test_rdal_off_slows_sends(self, t3d_machine):
        node = replace(
            t3d_machine.node,
            read_ahead=replace(t3d_machine.node.read_ahead, enabled=False),
        )
        with_rdal = MemoryEngine(t3d_machine.node).run_load_send(
            make_stream(CONTIGUOUS, N)
        )
        without = MemoryEngine(node).run_load_send(make_stream(CONTIGUOUS, N))
        # The paper measured ~60% improvement from read-ahead.
        assert with_rdal.mbps > 1.3 * without.mbps

    def test_wbq_merging_speeds_contiguous_stores(self, t3d_machine):
        node = replace(
            t3d_machine.node,
            write_buffer=replace(t3d_machine.node.write_buffer, merge=False),
        )
        merged = run_copy(t3d_machine.node, CONTIGUOUS, CONTIGUOUS)
        unmerged = run_copy(node, CONTIGUOUS, CONTIGUOUS)
        assert merged.mbps > unmerged.mbps

    def test_pipelined_loads_hide_latency(self, paragon_machine):
        node = replace(
            paragon_machine.node,
            processor=replace(
                paragon_machine.node.processor,
                pipelined_load_depth=0,
                pipelined_loads_bypass_cache=False,
            ),
        )
        pipelined = run_copy(paragon_machine.node, strided(64), CONTIGUOUS)
        blocking = run_copy(node, strided(64), CONTIGUOUS)
        assert pipelined.mbps > blocking.mbps

    def test_occupancy_scale_slows_memory_bound_kernels(self, paragon_machine):
        read = make_stream(strided(64), N)
        write = make_stream(CONTIGUOUS, N, base=(1 << 24) + 256)
        fast = MemoryEngine(paragon_machine.node).run_copy(read, write)
        slow = MemoryEngine(paragon_machine.node, occupancy_scale=2.0).run_copy(
            make_stream(strided(64), N),
            make_stream(CONTIGUOUS, N, base=(1 << 24) + 256),
        )
        assert slow.ns > 1.3 * fast.ns


class TestSendReceiveKernels:
    def test_load_send_capped_by_ni(self, t3d_machine):
        engine = MemoryEngine(t3d_machine.node)
        result = engine.run_load_send(make_stream(CONTIGUOUS, N))
        assert result.mbps <= t3d_machine.node.ni.fifo_mbps + 1e-9

    def test_receive_store_slower_for_strided(self, paragon_machine):
        engine = MemoryEngine(paragon_machine.node)
        contiguous = engine.run_receive_store(make_stream(CONTIGUOUS, N))
        strided_result = MemoryEngine(paragon_machine.node).run_receive_store(
            make_stream(strided(64), N)
        )
        assert contiguous.mbps > strided_result.mbps

    def test_deposit_contiguous_faster_than_pairs(self, t3d_machine):
        engine = MemoryEngine(t3d_machine.node)
        block = engine.run_deposit(make_stream(CONTIGUOUS, N))
        pairs = MemoryEngine(t3d_machine.node).run_deposit(
            make_stream(strided(64), N)
        )
        assert block.mbps > 1.5 * pairs.mbps

    def test_deposit_rejects_unsupported_pattern(self, paragon_machine):
        engine = MemoryEngine(paragon_machine.node)
        with pytest.raises(ValueError, match="deposit engine"):
            engine.run_deposit(make_stream(strided(64), N))

    def test_fetch_send_requires_dma(self, t3d_machine):
        engine = MemoryEngine(t3d_machine.node)
        with pytest.raises(ValueError, match="no DMA"):
            engine.run_fetch_send(N)

    def test_fetch_send_page_kicks_cost_time(self, paragon_machine):
        # Lift the NI cap so the DMA engine itself is the bottleneck.
        node = replace(
            paragon_machine.node,
            ni=replace(paragon_machine.node.ni, fifo_mbps=10000.0),
        )
        no_kicks = replace(node, dma=replace(node.dma, page_kick_ns=0.0))
        with_kicks = MemoryEngine(node).run_fetch_send(1 << 16)
        without = MemoryEngine(no_kicks).run_fetch_send(1 << 16)
        assert with_kicks.ns > without.ns
