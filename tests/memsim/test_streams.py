"""Tests for address-stream generation (repro.memsim.streams)."""

import numpy as np
import pytest

from repro.core.patterns import CONTIGUOUS, FIXED, INDEXED, strided
from repro.memsim.config import WORD_BYTES
from repro.memsim.streams import make_stream


class TestContiguous:
    def test_addresses_are_dense_words(self):
        stream = make_stream(CONTIGUOUS, 16, base=1000)
        expected = 1000 + np.arange(16) * WORD_BYTES
        assert np.array_equal(stream.addresses, expected)

    def test_no_index_addresses(self):
        assert make_stream(CONTIGUOUS, 8).index_addresses is None

    def test_payload_bytes(self):
        assert make_stream(CONTIGUOUS, 10).payload_bytes == 80


class TestStrided:
    def test_constant_stride(self):
        stream = make_stream(strided(64), 4)
        diffs = np.diff(stream.addresses)
        assert np.all(diffs == 64 * WORD_BYTES)

    def test_blocked_stride(self):
        stream = make_stream(strided(8, block=2), 6)
        # Pairs of consecutive words, 8 words apart:
        expected = np.array([0, 8, 64, 72, 128, 136])
        assert np.array_equal(stream.addresses, expected)

    def test_block_tail_truncated(self):
        stream = make_stream(strided(8, block=2), 5)
        assert stream.nwords == 5


class TestIndexed:
    def test_has_index_addresses(self):
        stream = make_stream(INDEXED, 64)
        assert stream.index_addresses is not None
        assert len(stream.index_addresses) == 64
        # Index elements are 4-byte ints read contiguously.
        assert np.all(np.diff(stream.index_addresses) == 4)

    def test_deterministic_given_seed(self):
        a = make_stream(INDEXED, 128, seed=7)
        b = make_stream(INDEXED, 128, seed=7)
        assert np.array_equal(a.addresses, b.addresses)

    def test_different_seeds_differ(self):
        a = make_stream(INDEXED, 128, seed=7)
        b = make_stream(INDEXED, 128, seed=8)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_index_array_disjoint_from_data(self):
        stream = make_stream(INDEXED, 256)
        assert stream.index_addresses.min() > stream.addresses.max()

    def test_addresses_word_aligned(self):
        stream = make_stream(INDEXED, 256)
        assert np.all(stream.addresses % WORD_BYTES == 0)

    def test_run_length_increases_page_locality(self):
        def page_hit_fraction(run):
            stream = make_stream(INDEXED, 4096, seed=3, index_run=run)
            pages = stream.addresses // 256
            return float(np.mean(pages[1:] == pages[:-1]))

        assert page_hit_fraction(8) > page_hit_fraction(1) + 0.2

    def test_run_one_has_negligible_locality(self):
        stream = make_stream(INDEXED, 4096, seed=3, index_run=1)
        pages = stream.addresses // 256
        assert float(np.mean(pages[1:] == pages[:-1])) < 0.1


class TestValidation:
    def test_fixed_pattern_rejected(self):
        with pytest.raises(ValueError):
            make_stream(FIXED, 8)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            make_stream(CONTIGUOUS, 0)
