"""Tests for the open-page DRAM model (repro.memsim.dram)."""

import pytest

from repro.memsim.config import DRAMConfig
from repro.memsim.dram import DRAM


@pytest.fixture
def dram():
    return DRAM(
        DRAMConfig(
            page_bytes=1024,
            read_hit_ns=100.0,
            read_miss_ns=200.0,
            read_occupancy_hit_ns=40.0,
            read_occupancy_miss_ns=80.0,
            write_hit_ns=30.0,
            write_miss_ns=120.0,
            burst_word_ns=10.0,
        )
    )


class TestPageBehaviour:
    def test_first_access_misses(self, dram):
        latency, occupancy = dram.read(0)
        assert (latency, occupancy) == (200.0, 80.0)
        assert dram.page_misses == 1

    def test_same_page_hits(self, dram):
        dram.read(0)
        latency, occupancy = dram.read(512)
        assert (latency, occupancy) == (100.0, 40.0)
        assert dram.page_hits == 1

    def test_crossing_page_misses(self, dram):
        dram.read(0)
        latency, __ = dram.read(1024)
        assert latency == 200.0

    def test_returning_to_closed_page_misses_again(self, dram):
        dram.read(0)
        dram.read(1024)
        latency, __ = dram.read(0)
        assert latency == 200.0

    def test_write_timings(self, dram):
        assert dram.write(0) == 120.0
        assert dram.write(8) == 30.0

    def test_reads_and_writes_share_the_open_page(self, dram):
        dram.read(0)
        assert dram.write(8) == 30.0

    def test_hit_rate(self, dram):
        dram.read(0)
        dram.read(8)
        dram.read(16)
        assert dram.hit_rate == pytest.approx(2 / 3)

    def test_reset(self, dram):
        dram.read(0)
        dram.reset()
        assert dram.page_hits == 0
        latency, __ = dram.read(0)
        assert latency == 200.0


class TestBursts:
    def test_read_burst_adds_per_word_cost(self, dram):
        latency, occupancy = dram.read_burst(0, 4)
        assert latency == 200.0 + 3 * 10.0
        assert occupancy == 80.0 + 3 * 10.0

    def test_single_word_burst_equals_read(self, dram):
        assert dram.read_burst(0, 1) == (200.0, 80.0)

    def test_write_burst(self, dram):
        assert dram.write_burst(0, 4) == 120.0 + 3 * 10.0


class TestBanking:
    def test_banks_keep_independent_open_pages(self):
        dram = DRAM(DRAMConfig(page_bytes=256, n_banks=2, read_hit_ns=50,
                               read_miss_ns=150))
        dram.read(0)      # bank 0, page 0
        dram.read(256)    # bank 1, page 1
        # Returning to page 0 still hits: bank 1's activity didn't close it.
        latency, __ = dram.read(8)
        assert latency == 50

    def test_single_bank_ping_pongs(self):
        dram = DRAM(DRAMConfig(page_bytes=256, n_banks=1, read_hit_ns=50,
                               read_miss_ns=150))
        dram.read(0)
        dram.read(512)    # same bank, different page: closes page 0
        latency, __ = dram.read(8)
        assert latency == 150

    def test_same_bank_different_page_misses(self):
        dram = DRAM(DRAMConfig(page_bytes=256, n_banks=2, read_hit_ns=50,
                               read_miss_ns=150))
        dram.read(0)       # bank 0, page 0
        dram.read(512)     # bank 0, page 2: closes page 0
        latency, __ = dram.read(0)
        assert latency == 150
