"""Tests for the write-back cache policy (the modern-node archetype)."""

import pytest

from dataclasses import replace

from repro.core.patterns import CONTIGUOUS, strided
from repro.machines import t3d
from repro.memsim.cache import Cache
from repro.memsim.config import CacheConfig
from repro.memsim.node import NodeMemorySystem


def writeback_node(**cache_changes):
    base = t3d().node
    cache = replace(base.cache, write_policy="back", **cache_changes)
    return NodeMemorySystem(replace(base, cache=cache), nwords=4096)


def stock_node():
    return NodeMemorySystem(t3d().node, nwords=4096)


class TestCacheDirtyTracking:
    def test_store_allocate_installs_dirty(self):
        cache = Cache(CacheConfig(size_bytes=128, line_bytes=32, associativity=1))
        hit, evicted = cache.store_allocate(0)
        assert not hit and evicted is None
        hit, __ = cache.store_allocate(8)  # same line
        assert hit

    def test_dirty_eviction_reported(self):
        cache = Cache(CacheConfig(size_bytes=128, line_bytes=32, associativity=1))
        cache.store_allocate(0)            # set 0, dirty
        hit, evicted = cache.load_allocate(128)  # aliases set 0
        assert not hit
        assert evicted == (0, True)
        assert cache.dirty_evictions == 1

    def test_clean_eviction_not_dirty(self):
        cache = Cache(CacheConfig(size_bytes=128, line_bytes=32, associativity=1))
        cache.load_allocate(0)
        __, evicted = cache.load_allocate(128)
        assert evicted == (0, False)
        assert cache.dirty_evictions == 0

    def test_invalidate_clears_dirty_bits(self):
        cache = Cache(CacheConfig(size_bytes=128, line_bytes=32, associativity=1))
        cache.store_allocate(0)
        cache.invalidate_all()
        __, evicted = cache.load_allocate(128)
        assert evicted is None  # nothing resident to evict

    def test_plain_probe_discards_dirty_state_of_victims(self):
        cache = Cache(CacheConfig(size_bytes=128, line_bytes=32, associativity=1))
        cache.store_allocate(0)
        cache.lookup_load(128)  # non-tracking install evicts line 0
        __, evicted = cache.load_allocate(256)
        # Line 128 was installed clean; its eviction is not dirty.
        assert evicted == (128, False)


class TestWriteBackBehaviour:
    def test_single_touch_stores_slower_than_write_around(self):
        """Communication stores touch each word once: write-allocate
        pays a fill plus an eventual write-back per line, so the
        'modern' policy loses to the T3D's write-around + WBQ."""
        modern = writeback_node()
        stock = stock_node()
        assert stock.measure_copy(CONTIGUOUS, CONTIGUOUS) > (
            1.2 * modern.measure_copy(CONTIGUOUS, CONTIGUOUS)
        )

    def test_strided_single_touch_also_slower(self):
        modern = writeback_node()
        stock = stock_node()
        assert stock.measure_copy(CONTIGUOUS, strided(64)) > (
            modern.measure_copy(CONTIGUOUS, strided(64))
        )

    def test_dirty_evictions_occur_in_streams(self):
        node = writeback_node()
        result = node.copy_result(CONTIGUOUS, CONTIGUOUS)
        # The destination stream wrote far more lines than the cache
        # holds: nearly all of them must have been written back.
        assert result.ns > 0
        engine_cache_lines = node.config.cache.n_lines
        assert node.nwords // node.config.cache.line_words > engine_cache_lines

    def test_send_streams_unaffected(self):
        """Load-sends never store to memory: policy is irrelevant."""
        modern = writeback_node()
        stock = stock_node()
        assert modern.measure_load_send(CONTIGUOUS) == pytest.approx(
            stock.measure_load_send(CONTIGUOUS), rel=0.02
        )
