"""Tests for transfer profiles (repro.memsim.report)."""

import pytest

from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.memsim.report import profile_copy, profile_load_send


class TestProfileCopy:
    def test_fields_consistent(self, t3d_node):
        profile = profile_copy(t3d_node, CONTIGUOUS, CONTIGUOUS)
        assert profile.name == "1C1"
        assert profile.mbps == pytest.approx(8000.0 / profile.ns_per_word, rel=1e-6)
        assert 0 <= profile.cache_hit_rate <= 1
        assert 0 <= profile.dram_page_hit_rate <= 1

    def test_copies_are_memory_bound(self, t3d_node):
        """The paper's point: memory, not instruction issue, limits
        communication-related copies on these machines."""
        for x, y in [
            (CONTIGUOUS, CONTIGUOUS),
            (strided(64), CONTIGUOUS),
            (INDEXED, CONTIGUOUS),
        ]:
            assert profile_copy(t3d_node, x, y).bound_by == "memory"

    def test_indexed_issue_bound_higher(self, t3d_node):
        plain = profile_copy(t3d_node, CONTIGUOUS, CONTIGUOUS)
        indexed = profile_copy(t3d_node, INDEXED, CONTIGUOUS)
        assert indexed.issue_ns_per_word > plain.issue_ns_per_word

    def test_strided_loads_kill_cache_hits(self, t3d_node):
        profile = profile_copy(t3d_node, strided(64), CONTIGUOUS)
        assert profile.cache_hit_rate < 0.05

    def test_render_mentions_boundedness(self, t3d_node):
        text = profile_copy(t3d_node, CONTIGUOUS, CONTIGUOUS).render()
        assert "bound" in text
        assert "MB/s" in text


class TestProfileLoadSend:
    def test_t3d_contiguous_send_near_issue_bound(self, t3d_node):
        """With read-ahead the 1S0 loop approaches its issue bound —
        which is why 1S0 (126 MB/s) beats 1C1 (93 MB/s)."""
        profile = profile_load_send(t3d_node, CONTIGUOUS)
        assert profile.bound_by == "issue"

    def test_strided_send_memory_bound(self, t3d_node):
        assert profile_load_send(t3d_node, strided(64)).bound_by == "memory"

    def test_name(self, paragon_node):
        assert profile_load_send(paragon_node, INDEXED).name == "wS0"
