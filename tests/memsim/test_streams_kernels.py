"""Tests for pure-stream kernels and latency probes (repro.memsim)."""

import pytest

from repro.core.patterns import CONTIGUOUS, INDEXED, strided


class TestLoadStreams:
    def test_contiguous_stream_is_fastest(self, t3d_node):
        contiguous = t3d_node.measure_load_stream(CONTIGUOUS)
        for pattern in (strided(8), strided(64), INDEXED):
            assert contiguous > t3d_node.measure_load_stream(pattern)

    def test_t3d_readahead_ratio(self, t3d_node):
        """Contiguous reads with read-ahead run several times faster
        than single-word strided reads (Section 3.5.1: 320 vs 55)."""
        ratio = t3d_node.measure_load_stream(CONTIGUOUS) / (
            t3d_node.measure_load_stream(strided(64))
        )
        assert ratio > 5

    def test_pure_stream_beats_copy(self, machine):
        """A pure read stream always beats the read half of a copy."""
        node = machine.node_memory(nwords=4096)
        assert node.measure_load_stream(CONTIGUOUS) > node.measure_copy(
            CONTIGUOUS, CONTIGUOUS
        )

    def test_indexed_stream_charges_index_loads(self, t3d_node):
        assert t3d_node.measure_load_stream(INDEXED) < (
            t3d_node.measure_load_stream(strided(64)) * 1.1
        )


class TestStoreStreams:
    def test_contiguous_store_stream_fast(self, t3d_node):
        """Merged, posted writes stream near the write-buffer bound."""
        assert t3d_node.measure_store_stream(CONTIGUOUS) > 200

    def test_strided_stores_slower(self, t3d_node):
        contiguous = t3d_node.measure_store_stream(CONTIGUOUS)
        strided_rate = t3d_node.measure_store_stream(strided(64))
        assert strided_rate < 0.5 * contiguous

    def test_t3d_store_streams_beat_load_streams_when_strided(self, t3d_node):
        """Posted writes vs blocking reads, isolated per direction."""
        stores = t3d_node.measure_store_stream(strided(64))
        loads = t3d_node.measure_load_stream(strided(64))
        assert stores > 1.5 * loads


class TestLatencyProbe:
    def test_t3d_latency_near_datasheet(self, t3d_node):
        assert t3d_node.load_latency_ns() == pytest.approx(162.0, abs=20)

    def test_paragon_latency_higher(self, paragon_node):
        """The i860 node's cold-load latency exceeds the T3D's — which
        is why it needs pipelined loads to compete."""
        assert paragon_node.load_latency_ns() > 200
