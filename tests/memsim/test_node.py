"""Tests for the node measurement facade (repro.memsim.node)."""

import pytest

from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.memsim.node import NodeMemorySystem


class TestMeasurements:
    def test_measure_copy_positive(self, t3d_node):
        assert t3d_node.measure_copy(CONTIGUOUS, CONTIGUOUS) > 0

    def test_results_deterministic(self, t3d_node):
        first = t3d_node.measure_copy(CONTIGUOUS, strided(64))
        second = t3d_node.measure_copy(CONTIGUOUS, strided(64))
        assert first == second

    def test_full_result_objects(self, t3d_node):
        result = t3d_node.copy_result(CONTIGUOUS, CONTIGUOUS)
        assert result.nwords == t3d_node.nwords
        assert result.ns > 0

    def test_send_receive_deposit(self, t3d_node):
        assert t3d_node.measure_load_send(CONTIGUOUS) > 0
        assert t3d_node.measure_deposit(strided(64)) > 0

    def test_receive_store_on_paragon(self, paragon_node):
        assert paragon_node.measure_receive_store(INDEXED) > 0

    def test_fetch_send_on_paragon(self, paragon_node):
        assert paragon_node.measure_fetch_send() > 0
        assert paragon_node.has_dma

    def test_t3d_has_no_dma(self, t3d_node):
        assert not t3d_node.has_dma

    def test_deposit_support_query(self, t3d_node, paragon_node):
        assert t3d_node.supports_deposit(INDEXED)
        assert paragon_node.supports_deposit(CONTIGUOUS)
        assert not paragon_node.supports_deposit(INDEXED)


class TestStreamLengthInsensitivity:
    def test_throughput_stable_across_lengths(self, t3d_machine):
        """Steady-state rates: doubling the stream barely moves MB/s."""
        short = NodeMemorySystem(t3d_machine.node, nwords=4096)
        long = NodeMemorySystem(t3d_machine.node, nwords=8192)
        a = short.measure_copy(CONTIGUOUS, strided(64))
        b = long.measure_copy(CONTIGUOUS, strided(64))
        assert abs(a - b) / b < 0.05
