"""Regression tests pinning down timeline-engine bug fixes.

Two historical bugs in :class:`~repro.memsim.engine.MemoryEngine`:

* ``run_fetch_send`` charged a DMA page kick per page of *payload*
  instead of per page boundary *crossed*, overcharging every transfer
  that ended exactly on a boundary;
* ``_load_readahead`` never evicted scheduled prefetches, so the
  table grew without bound over jumpy streams and a stream that
  jumped away and returned collected free hits from fills issued
  arbitrarily long ago.
"""

import numpy as np
import pytest

from repro.core.patterns import AccessPattern
from repro.memsim.config import (
    CacheConfig,
    DMAConfig,
    NIConfig,
    NodeConfig,
    ProcessorConfig,
    ReadAheadConfig,
    WORD_BYTES,
)
from repro.memsim.engine import MemoryEngine
from repro.memsim.streams import AccessStream


class TestFetchSendPageKicks:
    """A kick is owed per page boundary crossed, not per page started."""

    def _node(self, page_bytes: int = 4096) -> NodeConfig:
        return NodeConfig(
            dma=DMAConfig(
                present=True,
                word_ns=45.0,
                setup_ns=2000.0,
                page_bytes=page_bytes,
                page_kick_ns=500.0,
            ),
            # Uncapped NI so the assertion sees the raw DMA cost.
            ni=NIConfig(fifo_mbps=0.0),
        )

    @staticmethod
    def _expected_ns(node: NodeConfig, nwords: int, kicks: int) -> float:
        dma = node.dma
        return dma.setup_ns + nwords * dma.word_ns + kicks * dma.page_kick_ns

    def test_single_page_needs_no_kick(self):
        node = self._node()
        result = MemoryEngine(node).run_fetch_send(16)
        assert result.ns == pytest.approx(self._expected_ns(node, 16, kicks=0))

    @pytest.mark.parametrize("pages", [1, 2, 5])
    def test_exact_multiple_crosses_one_boundary_fewer(self, pages):
        node = self._node()
        words_per_page = node.dma.page_bytes // WORD_BYTES
        nwords = pages * words_per_page
        result = MemoryEngine(node).run_fetch_send(nwords)
        assert result.ns == pytest.approx(
            self._expected_ns(node, nwords, kicks=pages - 1)
        )

    @pytest.mark.parametrize("pages", [1, 2, 5])
    def test_one_word_past_the_boundary_pays_the_kick(self, pages):
        node = self._node()
        words_per_page = node.dma.page_bytes // WORD_BYTES
        nwords = pages * words_per_page + 1
        result = MemoryEngine(node).run_fetch_send(nwords)
        assert result.ns == pytest.approx(
            self._expected_ns(node, nwords, kicks=pages)
        )


def _readahead_node(depth: int = 2) -> NodeConfig:
    return NodeConfig(
        # 32 lines of 32 B, direct-mapped: small enough that a detour
        # through a distant region evicts every cached line.
        cache=CacheConfig(size_bytes=1024, line_bytes=32, associativity=1),
        read_ahead=ReadAheadConfig(enabled=True, depth=depth),
        processor=ProcessorConfig(pipelined_load_depth=0),
    )


def _load_stream(addresses) -> AccessStream:
    # The engine activates read-ahead from the declared pattern alone
    # and walks whatever addresses the stream carries, which lets these
    # tests drive the RDAL path over streams that jump.
    return AccessStream(
        pattern=AccessPattern.contiguous(),
        addresses=np.asarray(addresses, dtype=np.int64),
    )


class TestReadaheadEviction:
    def test_prefetch_table_stays_bounded(self):
        node = _readahead_node(depth=2)
        engine = MemoryEngine(node)
        # Every load lands on a fresh distant line, so each one
        # schedules `depth` prefetches that are never consumed.
        addresses = np.arange(300, dtype=np.int64) * (1 << 16)
        engine.run_load_stream(_load_stream(addresses))
        assert len(engine._prefetched) <= node.read_ahead.depth

    def test_no_free_hits_after_jump_and_return(self):
        """Returning to lines prefetched long ago costs a full miss.

        Walk lines 0..9 (the fill of line 9 schedules prefetches of
        lines 10 and 11), detour through a distant region long enough
        to flush the cache, then visit lines 10-11.  The read-ahead
        window must have dropped those stale prefetches: the visit has
        to cost exactly the same as visiting two never-seen lines with
        the same cache/page alignment.
        """
        node = _readahead_node(depth=2)
        line = node.cache.line_bytes
        prefix = np.arange(10, dtype=np.int64) * line
        detour = (1 << 20) + np.arange(40, dtype=np.int64) * line
        stale_tail = np.array([10 * line, 11 * line], dtype=np.int64)
        fresh_tail = (1 << 21) + np.array([0, line], dtype=np.int64)

        revisit = np.concatenate([prefix, detour, stale_tail])
        fresh = np.concatenate([prefix, detour, fresh_tail])
        ns_revisit = MemoryEngine(node).run_load_stream(
            _load_stream(revisit)
        ).ns
        ns_fresh = MemoryEngine(node).run_load_stream(_load_stream(fresh)).ns
        assert ns_revisit == pytest.approx(ns_fresh, rel=1e-9)
