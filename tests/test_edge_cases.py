"""Cross-cutting edge cases not covered by the per-module suites."""

import numpy as np
import pytest

from repro.compiler import Block, Cyclic, redistribute_1d
from repro.core import ThroughputTable, TransferKind
from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.memsim.streams import make_stream
from repro.runtime.engine import CommRuntime
from repro.runtime.stages import Stage, StagePipeline


class TestTinyWorkloads:
    def test_one_word_streams(self, t3d_machine):
        """Every simulator kernel accepts the degenerate 1-word case."""
        from repro.memsim.node import NodeMemorySystem

        node = NodeMemorySystem(t3d_machine.node, nwords=1)
        assert node.measure_copy(CONTIGUOUS, CONTIGUOUS) > 0
        assert node.measure_load_send(CONTIGUOUS) > 0
        assert node.measure_deposit(CONTIGUOUS) > 0

    def test_one_byte_transfer(self, t3d_machine):
        runtime = CommRuntime(t3d_machine)
        result = runtime.transfer(CONTIGUOUS, CONTIGUOUS, 1)
        assert result.ns > 0

    def test_single_chunk_pipeline(self):
        pipeline = StagePipeline([Stage("s", 10.0, "r")])
        result = pipeline.run(10, chunk_bytes=1 << 20)
        assert result.nbytes == 10

    def test_two_node_redistribution(self):
        plan = redistribute_1d(Block(4, 2), Cyclic(4, 2))
        assert len(plan) == 2

    def test_single_node_distribution_no_communication(self):
        plan = redistribute_1d(Block(16, 1), Cyclic(16, 1))
        assert len(plan) == 0


class TestBlockedPatternLookups:
    def test_blocked_stride_uses_stride_anchor(self):
        table = ThroughputTable()
        table.set(TransferKind.COPY, "1", 64, 50.0)
        table.set(TransferKind.COPY, "1", "1", 90.0)
        from repro.core.transfers import copy

        blocked = copy(CONTIGUOUS, strided(64, block=2))
        assert table.lookup(blocked) == 50.0

    def test_both_sides_blocked(self):
        table = ThroughputTable()
        table.set(TransferKind.COPY, "1", "1", 90.0)
        table.set(TransferKind.COPY, "1", 64, 50.0)
        table.set(TransferKind.COPY, 64, "1", 40.0)
        from repro.core.transfers import copy

        rate = table.lookup(copy(strided(64, block=2), strided(2048, block=2)))
        assert 0 < rate < 40.0


class TestStreamEdges:
    def test_index_run_larger_than_stream(self):
        stream = make_stream(INDEXED, 4, index_run=1000)
        assert stream.nwords == 4

    def test_strided_block_longer_than_count(self):
        stream = make_stream(strided(16, block=8), 3)
        assert stream.nwords == 3
        assert np.array_equal(stream.addresses, np.array([0, 8, 16]))


class TestMachineEdges:
    def test_odd_partition_sizes(self, t3d_machine, paragon_machine):
        for n in (1, 2, 7, 13):
            assert t3d_machine.topology(n).n_nodes == n
            assert paragon_machine.topology(n).n_nodes == n

    def test_network_model_on_tiny_partition(self, t3d_machine):
        model = t3d_machine.network_model(n_nodes=2)
        assert model.congestion_for([(0, 1), (1, 0)]) >= 1
