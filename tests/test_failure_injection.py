"""Failure-injection tests: every layer fails loudly and legibly.

A performance model that silently extrapolates past its calibration is
worse than none; these tests pin the error behaviour users rely on.
"""

import pytest

from repro.core import (
    CalibrationError,
    CommCapabilities,
    CompositionError,
    CopyTransferModel,
    DepositSupport,
    ModelError,
    ThroughputTable,
    TransferKind,
)
from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.machines import Machine, RuntimeQuirks
from repro.runtime.engine import CommRuntime


class TestModelFailures:
    def test_empty_table_names_the_missing_key(self):
        model = CopyTransferModel(
            table=ThroughputTable("empty"),
            capabilities=CommCapabilities(deposit=DepositSupport.ANY),
        )
        with pytest.raises(CalibrationError, match="1C1"):
            model.estimate(CONTIGUOUS, CONTIGUOUS, "buffer-packing")

    def test_partial_table_fails_on_the_missing_stage(self):
        table = ThroughputTable("partial")
        table.set(TransferKind.COPY, "1", "1", 93.0)
        table.set(TransferKind.LOAD_SEND, "1", "0", 126.0)
        table.set(TransferKind.NETWORK_DATA, "0", "0", 69.0)
        model = CopyTransferModel(
            table=table,
            capabilities=CommCapabilities(deposit=DepositSupport.ANY),
        )
        with pytest.raises(CalibrationError, match="0D1"):
            model.estimate(CONTIGUOUS, CONTIGUOUS, "buffer-packing")

    def test_no_receiver_chained_is_composition_error(self):
        model = CopyTransferModel(
            table=ThroughputTable("any"),
            capabilities=CommCapabilities(deposit=DepositSupport.NONE),
        )
        with pytest.raises(CompositionError, match="background receiver"):
            model.build(CONTIGUOUS, strided(64), "chained")

    def test_choose_still_works_when_chained_infeasible(self, t3d_machine):
        machine_caps = CommCapabilities(deposit=DepositSupport.NONE)
        model = CopyTransferModel(
            table=t3d_machine.paper_table(), capabilities=machine_caps
        )
        # The paper table has no 0R1 entry, so packing also fails here —
        # with a calibration error, not a silent wrong answer.
        with pytest.raises((CalibrationError, ModelError)):
            model.choose(CONTIGUOUS, strided(64))


class TestRuntimeFailures:
    def test_unknown_style_string(self, t3d_machine):
        runtime = CommRuntime(t3d_machine)
        with pytest.raises(ValueError):
            runtime.transfer(CONTIGUOUS, CONTIGUOUS, 1024, style="smuggle")

    def test_indexed_patterns_fail_without_calibration(self, t3d_machine):
        """A runtime built on a table lacking indexed entries refuses
        an indexed transfer instead of guessing."""
        table = ThroughputTable("no-indexed")
        table.set(TransferKind.LOAD_SEND, "1", "0", 126.0)
        runtime = CommRuntime(t3d_machine)
        runtime.table = table
        with pytest.raises(CalibrationError):
            runtime.transfer(INDEXED, INDEXED, 1024, style="chained")


class TestSimulatorGuards:
    def test_deposit_pattern_guard(self, paragon_machine):
        node = paragon_machine.node_memory(nwords=512)
        with pytest.raises(ValueError, match="deposit engine"):
            node.deposit_result(strided(64))

    def test_missing_dma_guard(self, t3d_machine):
        node = t3d_machine.node_memory(nwords=512)
        with pytest.raises(ValueError, match="no DMA"):
            node.fetch_send_result()
