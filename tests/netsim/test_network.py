"""Tests for the bandwidth model (repro.netsim.network)."""

import pytest

from repro.netsim.network import FramingMode, NetworkConfig, NetworkModel
from repro.netsim.patterns import all_to_all, cyclic_shift
from repro.netsim.topology import Mesh, Torus


@pytest.fixture
def t3d_net(t3d_machine):
    return t3d_machine.network_model(n_nodes=64)


@pytest.fixture
def paragon_net(paragon_machine):
    return paragon_machine.network_model(n_nodes=64)


class TestRates:
    def test_table4_t3d_data_only(self, t3d_net):
        """Table 4, T3D row, data-only columns."""
        assert t3d_net.rate(FramingMode.DATA_ONLY, 1) == pytest.approx(142, rel=0.03)
        assert t3d_net.rate(FramingMode.DATA_ONLY, 2) == pytest.approx(69, rel=0.03)
        assert t3d_net.rate(FramingMode.DATA_ONLY, 4) == pytest.approx(35, rel=0.03)

    def test_table4_t3d_adp(self, t3d_net):
        assert t3d_net.rate(FramingMode.ADDRESS_DATA_PAIRS, 1) == pytest.approx(
            62, rel=0.03
        )
        assert t3d_net.rate(FramingMode.ADDRESS_DATA_PAIRS, 2) == pytest.approx(
            38, rel=0.05
        )
        assert t3d_net.rate(FramingMode.ADDRESS_DATA_PAIRS, 4) == pytest.approx(
            20, rel=0.05
        )

    def test_table4_paragon(self, paragon_net):
        assert paragon_net.rate(FramingMode.DATA_ONLY, 1) == pytest.approx(176, rel=0.03)
        assert paragon_net.rate(FramingMode.DATA_ONLY, 2) == pytest.approx(90, rel=0.03)
        assert paragon_net.rate(FramingMode.ADDRESS_DATA_PAIRS, 2) == pytest.approx(
            45, rel=0.03
        )

    def test_default_congestion_is_machine_typical(self, t3d_net):
        assert t3d_net.rate(FramingMode.DATA_ONLY) == t3d_net.rate(
            FramingMode.DATA_ONLY, 2
        )

    def test_t3d_adp_endpoint_cap_binds_at_low_congestion(self, t3d_net):
        """The annex caps adp transfers at ~62 even on an idle network,
        which is why Table 4's adp column falls less than 2x from
        congestion 1 to 2."""
        c1 = t3d_net.rate(FramingMode.ADDRESS_DATA_PAIRS, 1)
        c2 = t3d_net.rate(FramingMode.ADDRESS_DATA_PAIRS, 2)
        assert c1 / c2 < 1.8

    def test_paragon_scales_proportionally(self, paragon_net):
        c1 = paragon_net.rate(FramingMode.DATA_ONLY, 1)
        c4 = paragon_net.rate(FramingMode.DATA_ONLY, 4)
        assert c1 / c4 == pytest.approx(4.0)

    def test_invalid_congestion_rejected(self, t3d_net):
        with pytest.raises(ValueError):
            t3d_net.rate(FramingMode.DATA_ONLY, 0.5)


class TestPatternCongestion:
    def test_t3d_port_sharing_floor(self, t3d_net):
        """Two T3D nodes share a port: min congestion 2 at full use."""
        shift = cyclic_shift(64)
        assert t3d_net.congestion_for(shift) >= 2

    def test_t3d_half_populated_avoids_port_sharing(self, t3d_net):
        shift = cyclic_shift(64)
        assert t3d_net.congestion_for(shift, active_nodes=32) == 1

    def test_paragon_shift_is_congestion_one(self, paragon_net):
        assert paragon_net.congestion_for(cyclic_shift(64)) == 1

    def test_all_to_all_congests_more_than_shift(self, paragon_net):
        aapc = paragon_net.congestion_for(all_to_all(64))
        shift = paragon_net.congestion_for(cyclic_shift(64))
        assert aapc > shift

    def test_rate_for_pattern_combines(self, paragon_net):
        rate = paragon_net.rate_for_pattern(FramingMode.DATA_ONLY, cyclic_shift(64))
        assert rate == paragon_net.rate(FramingMode.DATA_ONLY, 1)

    def test_model_without_topology_rejects_patterns(self):
        model = NetworkModel(NetworkConfig())
        with pytest.raises(ValueError):
            model.congestion_for([(0, 1)])


class TestMachineTopologies:
    def test_t3d_topology_is_torus(self, t3d_machine):
        topology = t3d_machine.topology(64)
        assert isinstance(topology, Torus)
        assert topology.n_nodes == 64
        assert topology.dims == (4, 4, 4)

    def test_paragon_topology_is_elongated_mesh(self, paragon_machine):
        topology = paragon_machine.topology(64)
        assert isinstance(topology, Mesh)
        assert topology.dims == (4, 16)

    def test_odd_sizes_still_factor(self, t3d_machine, paragon_machine):
        assert t3d_machine.topology(30).n_nodes == 30
        assert paragon_machine.topology(24).n_nodes == 24
