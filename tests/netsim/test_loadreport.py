"""Tests for link-load analysis (repro.netsim.loadreport)."""

import pytest

from repro.netsim import Mesh, Torus, all_to_all, cyclic_shift, link_load_report


class TestReport:
    def test_hop_conservation(self):
        mesh = Mesh(4, 4)
        flows = all_to_all(16)
        report = link_load_report(mesh, flows)
        expected = sum(len(mesh.route(s, d)) for s, d in flows)
        assert report.total_hops == expected

    def test_max_load_matches_topology(self):
        mesh = Mesh(4, 16)
        flows = all_to_all(64)
        report = link_load_report(mesh, flows)
        assert report.max_load == mesh.max_link_congestion(flows)

    def test_hottest_sorted_desc(self):
        report = link_load_report(Mesh(4, 16), all_to_all(64), hottest=5)
        loads = [load for __, load in report.hottest]
        assert loads == sorted(loads, reverse=True)
        assert loads[0] == report.max_load

    def test_aspect_ratio_shows_in_dimensions(self):
        """Section 4.3's Paragon quirk, made visible: on the skewed
        4x16 mesh the long (column) dimension carries far more load."""
        report = link_load_report(Mesh(4, 16), all_to_all(64))
        rows, cols = report.by_dimension
        assert cols.max_load > 2 * rows.max_load

    def test_square_mesh_is_balanced(self):
        report = link_load_report(Mesh(8, 8), all_to_all(64))
        rows, cols = report.by_dimension
        assert rows.max_load == cols.max_load

    def test_empty_flows(self):
        report = link_load_report(Torus(4, 4), [])
        assert report.max_load == 0
        assert report.total_hops == 0

    def test_shift_loads_one_per_link(self):
        report = link_load_report(Torus(16), cyclic_shift(16))
        assert report.max_load == 1

    def test_render(self):
        text = link_load_report(Mesh(4, 4), all_to_all(16)).render()
        assert "worst link load" in text
        assert "dim 0" in text and "dim 1" in text
