"""Tests for topologies and routing (repro.netsim.topology)."""

import pytest

from repro.netsim.topology import Mesh, Torus


class TestCoordinates:
    def test_roundtrip_mesh(self):
        mesh = Mesh(4, 8)
        for node in range(mesh.n_nodes):
            assert mesh.node_id(mesh.coordinates(node)) == node

    def test_roundtrip_torus(self):
        torus = Torus(4, 4, 4)
        for node in range(torus.n_nodes):
            assert torus.node_id(torus.coordinates(node)) == node

    def test_n_nodes(self):
        assert Mesh(4, 8).n_nodes == 32
        assert Torus(2, 8, 8).n_nodes == 128

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            Mesh(2, 2).coordinates(4)

    def test_bad_coordinate_rejected(self):
        with pytest.raises(ValueError):
            Mesh(2, 2).node_id((2, 0))
        with pytest.raises(ValueError):
            Mesh(2, 2).node_id((0,))

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Mesh()
        with pytest.raises(ValueError):
            Torus(0, 4)


class TestRouting:
    def test_self_route_is_empty(self):
        assert Mesh(4, 4).route(5, 5) == []

    def test_route_connects_endpoints(self):
        mesh = Mesh(4, 4)
        for src in range(16):
            for dst in range(16):
                links = mesh.route(src, dst)
                if src == dst:
                    continue
                assert links[0].src == src
                assert links[-1].dst == dst
                for a, b in zip(links, links[1:]):
                    assert a.dst == b.src

    def test_mesh_route_length_is_manhattan(self):
        mesh = Mesh(4, 4)
        links = mesh.route(mesh.node_id((0, 0)), mesh.node_id((3, 2)))
        assert len(links) == 5

    def test_dimension_order(self):
        mesh = Mesh(4, 4)
        links = mesh.route(mesh.node_id((0, 0)), mesh.node_id((2, 2)))
        dims = [link.dim for link in links]
        assert dims == sorted(dims)

    def test_torus_takes_short_way_around(self):
        torus = Torus(8)
        links = torus.route(0, 7)
        assert len(links) == 1  # wraps around, not 7 hops

    def test_torus_route_length_never_exceeds_half(self):
        torus = Torus(8, 8)
        for src in (0, 27, 63):
            for dst in range(torus.n_nodes):
                assert len(torus.route(src, dst)) <= 8

    def test_mesh_has_no_wraparound(self):
        mesh = Mesh(8)
        assert len(mesh.route(0, 7)) == 7


class TestLinkLoads:
    def test_disjoint_flows_no_contention(self):
        mesh = Mesh(1, 8)
        flows = [(0, 1), (2, 3), (4, 5)]
        assert mesh.max_link_congestion(flows) == 1

    def test_overlapping_flows_accumulate(self):
        mesh = Mesh(1, 8)
        flows = [(0, 7), (1, 7), (2, 7)]
        # The last link into node 7 carries all three flows.
        assert mesh.max_link_congestion(flows) == 3

    def test_cyclic_shift_on_torus_is_congestion_one(self):
        torus = Torus(4, 4)
        flows = [(i, (i + 1) % 16) for i in range(16)]
        assert torus.max_link_congestion(flows) == 1

    def test_empty_flows(self):
        assert Mesh(2, 2).max_link_congestion([]) == 0

    def test_self_flows_ignored(self):
        assert Mesh(2, 2).max_link_congestion([(0, 0), (1, 1)]) == 0

    def test_all_links_bidirectional_mesh(self):
        mesh = Mesh(2, 2)
        links = mesh.all_links()
        # 2x2 mesh: 4 undirected edges -> 8 directed links.
        assert len(links) == 8
