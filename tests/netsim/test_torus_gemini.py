"""Per-dimension wraparound, the Gemini-class torus, and rerouting
around failed torus links (regressions for the old single-topology
assumptions in FaultyTopology and the congestion scheduler)."""

import pytest

from repro.faults import FaultPlan, FaultyTopology, LinkFault
from repro.netsim.topology import GeminiTorus, Link, Mesh, Topology, Torus


class TestPerDimensionWrap:
    def test_scalar_wrap_broadcasts(self):
        topo = Topology((4, 4), wraparound=True)
        assert topo.wrap == (True, True)
        assert topo.wraparound

    def test_mixed_wrap(self):
        topo = Topology((4, 4, 2), wraparound=(True, False, True))
        assert topo.wrap == (True, False, True)
        assert not topo.wraparound

    def test_wrap_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Topology((4, 4), wraparound=(True,))

    def test_route_wraps_only_on_wrapped_dims(self):
        topo = Topology((6, 6), wraparound=(True, False))
        # Dim 0 wraps: 0 -> 5 is one hop the short way round.
        short = topo.route(topo.node_id((0, 0)), topo.node_id((5, 0)))
        assert len(short) == 1
        # Dim 1 does not: 0 -> 5 walks all five mesh hops.
        long = topo.route(topo.node_id((0, 0)), topo.node_id((0, 5)))
        assert len(long) == 5

    def test_classic_classes_unchanged(self):
        assert Mesh(4, 4).wrap == (False, False)
        assert Torus(4, 4).wrap == (True, True)


class TestGeminiTorus:
    def test_default_capacity_halves_dim_one(self):
        topo = GeminiTorus(4, 4, 4)
        assert topo.dim_capacity == (1.0, 0.5, 1.0)
        y_link = Link(src=0, dst=topo.node_id((0, 1, 0)), dim=1,
                      positive=True)
        x_link = Link(src=0, dst=topo.node_id((1, 0, 0)), dim=0,
                      positive=True)
        assert topo.link_weight(y_link) == 0.5
        assert topo.link_weight(x_link) == 1.0

    def test_narrow_dim_dominates_congestion(self):
        plain = Torus(4, 4, 4)
        gemini = GeminiTorus(4, 4, 4)
        # One flow straight down the half-capacity Y dimension counts
        # double on the Gemini torus.
        src = plain.node_id((0, 0, 0))
        dst = plain.node_id((0, 1, 0))
        flows = [(src, dst)]
        assert plain.max_link_congestion(flows) == 1.0
        assert gemini.max_link_congestion(flows) == 2.0

    def test_routing_key_distinguishes_capacity(self):
        assert (GeminiTorus(4, 4, 4).routing_key()
                != Torus(4, 4, 4).routing_key())
        assert (GeminiTorus(4, 4, 4).routing_key()
                != GeminiTorus(4, 4, 4,
                               dim_capacity=(1.0, 1.0, 1.0)).routing_key())

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            GeminiTorus(4, 4, 4, dim_capacity=(1.0, 0.5))
        with pytest.raises(ValueError):
            GeminiTorus(4, 4, 4, dim_capacity=(1.0, 0.0, 1.0))


class TestTorusRerouting:
    """FaultyTopology must work on any topology class, not just Mesh
    — these pin the once-latent single-topology assumptions."""

    def test_torus_detour_avoids_failed_wrap_link(self):
        base = Torus(4, 4)
        a = base.node_id((0, 0))
        b = base.node_id((3, 0))
        plan = FaultPlan(links=(LinkFault(src=a, dst=b, failed=True),))
        faulty = FaultyTopology(base, plan)
        route = faulty.route(a, b)
        assert route, "torus must reroute around a cut wrap link"
        for link in route:
            assert (link.src, link.dst) != (a, b)
        assert route[0].src == a and route[-1].dst == b

    def test_torus_inherits_wrap_vector(self):
        base = Topology((4, 4), wraparound=(True, False))
        faulty = FaultyTopology(base, FaultPlan())
        assert faulty.wrap == base.wrap
        assert faulty.dims == base.dims

    def test_gemini_faulty_keeps_link_weights(self):
        base = GeminiTorus(4, 4, 4)
        faulty = FaultyTopology(base, FaultPlan())
        y_link = Link(src=0, dst=base.node_id((0, 1, 0)), dim=1,
                      positive=True)
        assert faulty.link_weight(y_link) == base.link_weight(y_link)
        # An unfailed, underated Gemini topology still reports the
        # capacity-weighted congestion of its base.
        src = base.node_id((0, 0, 0))
        dst = base.node_id((0, 1, 0))
        assert (faulty.max_link_congestion([(src, dst)])
                == base.max_link_congestion([(src, dst)]))

    def test_derate_compounds_with_link_weight(self):
        base = GeminiTorus(4, 4, 4)
        src = base.node_id((0, 0, 0))
        dst = base.node_id((0, 1, 0))
        plan = FaultPlan(links=(LinkFault(src=src, dst=dst, derate=0.5),))
        faulty = FaultyTopology(base, plan)
        # Half-capacity dim (x2) further derated to half (x2) => 4x.
        assert faulty.max_link_congestion([(src, dst)]) == 4.0

    def test_faulty_routing_key_embeds_base_key(self):
        gemini = FaultyTopology(GeminiTorus(4, 4, 4), FaultPlan())
        plain = FaultyTopology(Torus(4, 4, 4), FaultPlan())
        assert gemini.routing_key() != plain.routing_key()
