"""Tests for traffic-pattern generators (repro.netsim.patterns)."""

import pytest

from repro.netsim.patterns import (
    all_to_all,
    cyclic_shift,
    neighbor_exchange,
    transpose_exchange,
)


class TestAllToAll:
    def test_counts(self):
        flows = all_to_all(8)
        assert len(flows) == 8 * 7
        assert len(set(flows)) == len(flows)

    def test_no_self_flows_by_default(self):
        assert all(src != dst for src, dst in all_to_all(5))

    def test_include_self(self):
        flows = all_to_all(4, include_self=True)
        assert len(flows) == 16
        assert (2, 2) in flows

    def test_transpose_exchange_is_aapc(self):
        assert set(transpose_exchange(6)) == set(all_to_all(6))


class TestCyclicShift:
    def test_default_offset(self):
        flows = cyclic_shift(4)
        assert flows == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_custom_offset(self):
        flows = cyclic_shift(6, offset=2)
        assert (0, 2) in flows
        assert (5, 1) in flows

    def test_every_node_sends_and_receives_once(self):
        flows = cyclic_shift(16, offset=5)
        assert len({src for src, __ in flows}) == 16
        assert len({dst for __, dst in flows}) == 16


class TestNeighborExchange:
    def test_adjacency_flows(self):
        adjacency = [[1], [0, 2], [1]]
        flows = neighbor_exchange(adjacency)
        assert set(flows) == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_self_entries_ignored(self):
        assert neighbor_exchange([[0]]) == []

    def test_empty(self):
        assert neighbor_exchange([]) == []
