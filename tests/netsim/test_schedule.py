"""Tests for AAPC phase scheduling (repro.netsim.schedule)."""

import pytest

from repro.netsim.patterns import all_to_all, cyclic_shift
from repro.netsim.schedule import (
    aapc_phases_shift,
    aapc_phases_xor,
    best_aapc_schedule,
    partition_into_phases,
    schedule_congestion,
    scheduled_congestion,
)
from repro.netsim.topology import Mesh, Torus


def assert_valid_schedule(phases, n):
    """Every phase is a partial permutation; flows cover the AAPC."""
    seen = set()
    for phase in phases:
        sources = [src for src, __ in phase]
        destinations = [dst for __, dst in phase]
        assert len(set(sources)) == len(sources)
        assert len(set(destinations)) == len(destinations)
        seen.update(phase)
    expected = {(s, d) for s in range(n) for d in range(n) if s != d}
    assert seen == expected


class TestPhaseFamilies:
    @pytest.mark.parametrize("n", [2, 3, 8, 12])
    def test_shift_schedule_complete_and_valid(self, n):
        phases = aapc_phases_shift(n)
        assert len(phases) == n - 1
        assert_valid_schedule(phases, n)

    @pytest.mark.parametrize("n", [2, 4, 16])
    def test_xor_schedule_complete_and_valid(self, n):
        phases = aapc_phases_xor(n)
        assert len(phases) == n - 1
        assert_valid_schedule(phases, n)

    def test_xor_requires_power_of_two(self):
        with pytest.raises(ValueError):
            aapc_phases_xor(12)

    def test_xor_phases_are_involutions(self):
        for phase in aapc_phases_xor(8):
            flows = set(phase)
            assert all((dst, src) in flows for src, dst in flows)

    def test_trivial_sizes(self):
        assert aapc_phases_shift(1) == []
        assert aapc_phases_xor(1) == []


class TestScheduleCongestion:
    def test_paper_claim_64_node_torus(self):
        """Scheduled AAPC on the 64-node T3D torus runs at the
        port-sharing congestion (2), not the unscheduled worst link."""
        torus = Torus(4, 4, 4)
        __, worst, __phases = best_aapc_schedule(torus)
        assert worst <= 2
        assert torus.max_link_congestion(all_to_all(64)) > 10 * worst

    def test_paragon_aspect_ratio_quirk(self):
        """Skewed meshes congest even scheduled exchanges (Section 4.3)."""
        skewed = Mesh(4, 16)
        square = Mesh(8, 8)
        __, worst_skewed, __p1 = best_aapc_schedule(skewed)
        __, worst_square, __p2 = best_aapc_schedule(square)
        assert worst_skewed > worst_square

    def test_per_phase_loads_reported(self):
        torus = Torus(2, 2)
        worst, per_phase = schedule_congestion(torus, aapc_phases_shift(4))
        assert len(per_phase) == 3
        assert worst == max(per_phase)


class TestPartition:
    def test_complete_exchange_detected(self):
        phases = partition_into_phases(all_to_all(8))
        assert len(phases) == 7
        assert_valid_schedule(phases, 8)

    def test_shift_pattern_single_phase(self):
        phases = partition_into_phases(cyclic_shift(16))
        assert len(phases) == 1

    def test_greedy_phases_are_partial_permutations(self):
        flows = [(0, 1), (0, 2), (1, 2), (3, 1)]
        phases = partition_into_phases(flows)
        for phase in phases:
            sources = [s for s, __ in phase]
            destinations = [d for __, d in phase]
            assert len(set(sources)) == len(sources)
            assert len(set(destinations)) == len(destinations)
        assert sum(len(p) for p in phases) == len(flows)

    def test_self_flows_dropped(self):
        assert partition_into_phases([(2, 2)]) == []

    def test_scheduled_congestion_cached(self):
        torus = Torus(4, 4)
        first = scheduled_congestion(torus, all_to_all(16))
        second = scheduled_congestion(torus, all_to_all(16))
        assert first == second
        assert first <= 2
