"""Tests for fault propagation into collective steps."""

import pytest

from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS
from repro.faults import (
    DepositFault,
    FaultPlan,
    LinkFault,
    NodeFault,
    injecting,
)
from repro.machines import t3d
from repro.runtime.collective import CommunicationStep
from repro.runtime.engine import CommRuntime


@pytest.fixture(scope="module")
def runtime():
    return CommRuntime(t3d(), rates="paper")


def _shift_step(runtime, n=8, nbytes=1 << 16, **kwargs):
    flows = [(i, (i + 1) % n) for i in range(n)]
    return CommunicationStep(runtime, flows, CONTIGUOUS, CONTIGUOUS, nbytes, **kwargs)


class TestEmptyPlan:
    def test_bit_identical_to_healthy(self, runtime):
        step = _shift_step(runtime)
        healthy = step.run()
        with injecting(FaultPlan(seed=13)):
            under = step.run()
        assert under.per_node_mbps == healthy.per_node_mbps
        assert under.step_ns == healthy.step_ns
        assert under.congestion == healthy.congestion
        assert under.degraded is None
        assert under.retries == 0


class TestDegradation:
    def test_slow_node_paces_the_step(self, runtime):
        step = _shift_step(runtime)
        healthy = step.run()
        with injecting(FaultPlan(seed=1, nodes=(NodeFault(node=3, slowdown=3.0),))):
            hurt = step.run()
        assert hurt.per_node_mbps < healthy.per_node_mbps
        assert hurt.step_ns > healthy.step_ns

    def test_sample_flow_targets_worst_endpoints(self, runtime):
        step = _shift_step(runtime)
        plan = FaultPlan(seed=1, nodes=(NodeFault(node=3, slowdown=3.0),))
        src, dst = step._sample_flow(plan)
        assert 3 in (src, dst)

    def test_deposit_fault_surfaces_on_step_result(self, runtime):
        step = _shift_step(runtime)
        with injecting(FaultPlan(seed=1, deposits=(DepositFault(),))):
            result = step.run(OperationStyle.CHAINED)
        assert result.degraded is not None
        assert result.degraded.fallback == "buffer-packing"
        assert result.per_node_mbps > 0

    def test_derated_links_raise_unscheduled_congestion(self, runtime):
        step = _shift_step(runtime, scheduled=False)
        healthy = step.run()
        plan = FaultPlan(
            seed=1, links=(LinkFault(src=0, dst=1, derate=0.25),)
        )
        with injecting(plan):
            hurt = step.run()
        assert hurt.congestion > healthy.congestion

    def test_failed_link_step_still_completes(self, runtime):
        step = _shift_step(runtime)
        plan = FaultPlan(seed=1, links=(LinkFault(src=0, dst=1, failed=True),))
        with injecting(plan):
            result = step.run()
        assert result.per_node_mbps > 0

    def test_deterministic_replay(self, runtime):
        step = _shift_step(runtime)
        plan = FaultPlan.chaos(seed=5)
        with injecting(plan):
            first = step.run()
        with injecting(plan):
            second = step.run()
        assert first.per_node_mbps == second.per_node_mbps
        assert first.step_ns == second.step_ns
