"""Tests for the retry policy and recovery pricing."""

import pytest

from repro.core.errors import FaultError, TransferAbortedError
from repro.faults import FaultPlan, FragmentFault, RetryPolicy, recovery_charge


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1
        assert policy.granularity == "fragment"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_ns": -1.0},
            {"backoff_base_ns": -5.0},
            {"backoff_factor": 0.5},
            {"backoff_cap_ns": 1.0, "backoff_base_ns": 2.0},
            {"max_attempts": 0},
            {"granularity": "packet"},
            {"retry_budget": -0.1},
            {"retry_budget": 1.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(FaultError):
            RetryPolicy(**kwargs)

    def test_retry_budget_defaults_open_and_round_trips(self):
        assert RetryPolicy().retry_budget == 1.0
        policy = RetryPolicy(retry_budget=0.25)
        assert policy.to_dict()["retry_budget"] == 0.25
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_backoff_grows_exponentially_to_the_cap(self):
        policy = RetryPolicy(
            backoff_base_ns=100.0, backoff_factor=2.0, backoff_cap_ns=350.0
        )
        assert policy.backoff_ns(0) == 100.0
        assert policy.backoff_ns(1) == 200.0
        assert policy.backoff_ns(2) == 350.0  # capped, not 400
        assert policy.backoff_ns(10) == 350.0

    def test_round_trip(self):
        policy = RetryPolicy(timeout_ns=123.0, max_attempts=4)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultError):
            RetryPolicy.from_dict({"timeout": 1})


def _lossy_plan(seed, loss, **policy_kwargs):
    return FaultPlan(
        seed=seed,
        fragments=(FragmentFault(loss=loss),),
        retry=RetryPolicy(**policy_kwargs) if policy_kwargs else RetryPolicy(),
    )


class TestRecoveryCharge:
    def test_no_wire_faults_is_free(self):
        plan = FaultPlan(seed=1)
        charge = recovery_charge(
            plan, fragments=4, fragment_ns=100.0, message_ns=400.0, key=("k",)
        )
        assert not charge
        assert charge.total_ns == 0.0

    def test_deterministic_replay(self):
        plan = _lossy_plan(3, 0.4)
        kwargs = dict(fragments=16, fragment_ns=50.0, message_ns=800.0, key=("m",))
        assert recovery_charge(plan, **kwargs) == recovery_charge(plan, **kwargs)

    def test_losses_pay_timeout_corruptions_do_not(self):
        # Seed 0 loses the first attempt of this key, then succeeds.
        loss_plan = FaultPlan(
            seed=0, fragments=(FragmentFault(loss=0.6),),
            retry=RetryPolicy(max_attempts=10),
        )
        charge = recovery_charge(
            loss_plan, fragments=1, fragment_ns=10.0, message_ns=10.0, key=("k",)
        )
        assert charge.losses >= 1
        assert charge.retry_ns >= loss_plan.retry.timeout_ns

    def test_message_granularity_retries_once_per_message(self):
        plan = FaultPlan(
            seed=0,
            fragments=(FragmentFault(loss=0.6),),
            retry=RetryPolicy(max_attempts=10, granularity="message"),
        )
        charge = recovery_charge(
            plan, fragments=64, fragment_ns=10.0, message_ns=640.0, key=("k",)
        )
        # Whole-message retransmits charge message_ns per retry.
        assert charge.retries >= 1
        assert charge.retry_ns >= 640.0

    def test_exhausted_budget_aborts(self):
        plan = FaultPlan(
            seed=0,
            fragments=(FragmentFault(loss=0.999999999),),
            retry=RetryPolicy(max_attempts=2),
        )
        with pytest.raises(TransferAbortedError):
            recovery_charge(
                plan, fragments=1, fragment_ns=10.0, message_ns=10.0, key=("k",)
            )

    def test_distinct_keys_draw_independently(self):
        plan = FaultPlan(
            seed=0,
            fragments=(FragmentFault(loss=0.3),),
            retry=RetryPolicy(max_attempts=20),
        )
        charges = {
            recovery_charge(
                plan, fragments=8, fragment_ns=10.0, message_ns=80.0, key=(i,)
            ).retries
            for i in range(20)
        }
        assert len(charges) > 1
