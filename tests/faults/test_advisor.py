"""Tests for fault-aware compiler advice."""

import pytest

from repro.compiler.advisor import advise_plan
from repro.compiler.commgen import transpose_2d
from repro.core.operations import OperationStyle
from repro.faults import DepositFault, FaultPlan, injecting
from repro.machines import t3d


@pytest.fixture(scope="module")
def plan():
    return transpose_2d(256, 256, 16)


class TestFaultAwareAdvice:
    def test_healthy_advice_has_no_degraded_ops(self, plan):
        advice = advise_plan(t3d(), plan)
        assert advice.degraded == ()

    def test_deposit_fault_moves_chained_ops_to_packing(self, plan):
        healthy = advise_plan(t3d(), plan)
        assert healthy.dominant_style() is OperationStyle.CHAINED
        faults = FaultPlan(seed=1, deposits=(DepositFault(),))
        advice = advise_plan(t3d(), plan, faults=faults)
        assert advice.dominant_style() is OperationStyle.BUFFER_PACKING
        assert len(advice.degraded) == len(advice.per_op)
        record = advice.degraded[0].degraded
        assert record.fault == "deposit-engine-unavailable"
        assert record.nominal_mbps > record.degraded_mbps

    def test_context_plan_applies(self, plan):
        with injecting(FaultPlan(seed=1, deposits=(DepositFault(),))):
            advice = advise_plan(t3d(), plan)
        assert advice.degraded

    def test_empty_plan_identical_to_healthy(self, plan):
        healthy = advise_plan(t3d(), plan)
        with injecting(FaultPlan(seed=1)):
            under = advise_plan(t3d(), plan)
        assert under == healthy

    def test_per_node_fault_only_degrades_matching_destinations(self, plan):
        target = plan.ops[0].dst
        faults = FaultPlan(seed=1, deposits=(DepositFault(node=target),))
        advice = advise_plan(t3d(), plan, faults=faults)
        assert advice.degraded
        assert all(a.op.dst == target for a in advice.degraded)

    def test_render_marks_degraded_ops(self, plan):
        faults = FaultPlan(seed=1, deposits=(DepositFault(),))
        text = advise_plan(t3d(), plan, faults=faults).render()
        assert "degraded" in text

    def test_degraded_step_estimate_is_slower(self, plan):
        healthy = advise_plan(t3d(), plan)
        faults = FaultPlan(seed=1, deposits=(DepositFault(),))
        degraded = advise_plan(t3d(), plan, faults=faults)
        assert degraded.predicted_step_us > healthy.predicted_step_us
