"""Tests for fault-degraded routing and congestion."""

import pytest

from repro.core.errors import FaultError
from repro.faults import (
    FaultPlan,
    FaultyTopology,
    LinkFault,
    degraded_congestion,
    reroute_report,
)
from repro.netsim.topology import Torus


def _torus():
    return Torus(4, 4)


class TestReroute:
    def test_detour_avoids_failed_link(self):
        plan = FaultPlan(links=(LinkFault(src=0, dst=1, failed=True),))
        faulty = FaultyTopology(_torus(), plan)
        route = faulty.route(0, 1)
        assert (0, 1) not in {(link.src, link.dst) for link in route}
        assert route[0].src == 0
        assert route[-1].dst == 1

    def test_healthy_routes_unchanged(self):
        plan = FaultPlan(links=(LinkFault(src=0, dst=1, failed=True),))
        faulty = FaultyTopology(_torus(), plan)
        base = _torus()
        assert [
            (l.src, l.dst) for l in faulty.route(2, 3)
        ] == [(l.src, l.dst) for l in base.route(2, 3)]

    def test_fully_cut_destination_raises(self):
        base = _torus()
        # neighbour_links lists outbound links; failing each reverse
        # direction leaves node 5 with no inbound path at all.
        cut = tuple(
            LinkFault(src=link.dst, dst=5, failed=True)
            for link in base.neighbour_links(5)
        )
        plan = FaultPlan(links=cut)
        faulty = FaultyTopology(base, plan)
        with pytest.raises(FaultError):
            faulty.route(0, 5)

    def test_reroute_report_counts_detour_hops(self):
        plan = FaultPlan(links=(LinkFault(src=0, dst=1, failed=True),))
        report = reroute_report(_torus(), plan, [(0, 1), (2, 3)])
        assert report["degraded_hops"] > report["healthy_hops"]
        assert report["detour_hops"] == (
            report["degraded_hops"] - report["healthy_hops"]
        )


class TestDegradedCongestion:
    def test_derated_link_weighs_heavier(self):
        flows = [(0, 1), (4, 5)]
        healthy = degraded_congestion(_torus(), None, flows)
        plan = FaultPlan(links=(LinkFault(src=0, dst=1, derate=0.5),))
        degraded = degraded_congestion(_torus(), plan, flows)
        assert degraded > healthy

    def test_failed_link_redirects_load(self):
        flows = [(0, 1)] * 3
        plan = FaultPlan(links=(LinkFault(src=0, dst=1, failed=True),))
        faulty = FaultyTopology(_torus(), plan)
        loads = faulty.link_loads(flows)
        assert all(
            (link.src, link.dst) != (0, 1) for link in loads
        )

    def test_empty_plan_does_not_wrap(self):
        topology = _torus()
        assert FaultPlan(seed=1).wrap_topology(topology) is topology

    def test_wrapped_topology_changes_routing_key(self):
        topology = _torus()
        plan = FaultPlan(links=(LinkFault(src=0, dst=1, failed=True),))
        assert plan.wrap_topology(topology).routing_key() != topology.routing_key()
