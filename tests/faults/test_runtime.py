"""Tests for fault injection through the communication runtime."""

import pytest

from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, strided
from repro.faults import (
    DepositFault,
    FaultPlan,
    FragmentFault,
    LinkFault,
    NodeFault,
    RetryPolicy,
    injecting,
)
from repro.machines import paragon, t3d
from repro.runtime.engine import CommRuntime
from repro.trace.tracer import Tracer, tracing

MB = 1 << 20

#: Seed chosen so the chaos fragment draw for this suite's transfer key
#: actually loses a fragment (draws are deterministic per key).
LOSSY_SEED = 7


@pytest.fixture(scope="module")
def runtime():
    return CommRuntime(t3d(), rates="paper")


def _lossy_plan():
    return FaultPlan(
        seed=LOSSY_SEED,
        fragments=(FragmentFault(loss=0.3),),
        retry=RetryPolicy(max_attempts=20),
    )


class TestZeroOverheadWhenOff:
    def test_empty_plan_bit_identical(self, runtime):
        x = strided(64, 8)
        base = runtime.transfer(x, CONTIGUOUS, MB, style=OperationStyle.CHAINED)
        with injecting(FaultPlan(seed=99)):
            under = runtime.transfer(
                x, CONTIGUOUS, MB, style=OperationStyle.CHAINED
            )
        assert under.ns == base.ns
        assert under.mbps == base.mbps
        assert under.phase_ns == base.phase_ns
        assert under.degraded is None
        assert under.retries == 0

    def test_no_plan_reports_no_degradation(self, runtime):
        result = runtime.transfer(CONTIGUOUS, strided(64), MB)
        assert result.degraded is None
        assert result.retries == 0


class TestDepositFallback:
    def test_chained_degrades_to_packing(self, runtime):
        x = strided(64, 8)
        with injecting(FaultPlan(seed=1, deposits=(DepositFault(),))):
            result = runtime.transfer(
                x, CONTIGUOUS, MB, style=OperationStyle.CHAINED
            )
        assert result.style is OperationStyle.BUFFER_PACKING
        assert result.mbps > 0
        record = result.degraded
        assert record is not None
        assert record.fault == "deposit-engine-unavailable"
        assert record.requested == "chained"
        assert record.fallback == "buffer-packing"
        assert record.nominal_mbps > record.degraded_mbps
        assert 0.0 < record.throughput_delta < 1.0

    def test_per_node_deposit_fault_needs_matching_dst(self, runtime):
        x = strided(64, 8)
        plan = FaultPlan(seed=1, deposits=(DepositFault(node=3),))
        with injecting(plan):
            elsewhere = runtime.transfer(
                x, CONTIGUOUS, MB, style=OperationStyle.CHAINED, src=0, dst=4
            )
            hit = runtime.transfer(
                x, CONTIGUOUS, MB, style=OperationStyle.CHAINED, src=0, dst=3
            )
        assert elsewhere.degraded is None
        assert hit.degraded is not None

    def test_packing_with_deposit_machine_degrades_gracefully(self, runtime):
        with injecting(FaultPlan(seed=1, deposits=(DepositFault(),))):
            result = runtime.transfer(
                CONTIGUOUS, CONTIGUOUS, MB, style=OperationStyle.BUFFER_PACKING
            )
        assert result.mbps > 0
        assert result.degraded is not None
        assert result.degraded.fallback == "receive-store"

    def test_explicit_runtime_plan_wins_over_context(self):
        rt = CommRuntime(
            t3d(),
            rates="paper",
            faults=FaultPlan(seed=1, deposits=(DepositFault(),)),
        )
        x = strided(64, 8)
        # Context installs a harmless plan; the runtime's own must rule.
        with injecting(FaultPlan(seed=2)):
            result = rt.transfer(x, CONTIGUOUS, MB, style=OperationStyle.CHAINED)
        assert result.degraded is not None


class TestDerates:
    def test_node_slowdown_slows_transfer(self, runtime):
        plan = FaultPlan(seed=1, nodes=(NodeFault(node=1, slowdown=4.0),))
        base = runtime.transfer(CONTIGUOUS, strided(64), MB)
        with injecting(plan):
            slow = runtime.transfer(CONTIGUOUS, strided(64), MB, src=0, dst=1)
            unaffected = runtime.transfer(
                CONTIGUOUS, strided(64), MB, src=2, dst=3
            )
        assert slow.mbps < base.mbps
        assert unaffected.mbps == base.mbps

    def test_global_link_derate_slows_anonymous_transfers(self, runtime):
        plan = FaultPlan(seed=1, links=(LinkFault(derate=0.25),))
        base = runtime.transfer(CONTIGUOUS, CONTIGUOUS, MB)
        with injecting(plan):
            slow = runtime.transfer(CONTIGUOUS, CONTIGUOUS, MB)
        assert slow.mbps < base.mbps

    def test_endpoint_link_fault_needs_route_through_it(self, runtime):
        plan = FaultPlan(seed=1, links=(LinkFault(src=0, dst=1, derate=0.2),))
        base = runtime.transfer(CONTIGUOUS, CONTIGUOUS, MB)
        with injecting(plan):
            through = runtime.transfer(CONTIGUOUS, CONTIGUOUS, MB, src=0, dst=1)
            around = runtime.transfer(CONTIGUOUS, CONTIGUOUS, MB, src=2, dst=3)
        assert through.mbps < base.mbps
        assert around.mbps == base.mbps


class TestRecoveryPhases:
    def test_retry_and_backoff_become_phases(self, runtime):
        with injecting(_lossy_plan()):
            result = runtime.transfer(
                strided(64, 8), CONTIGUOUS, MB,
                style=OperationStyle.CHAINED, src=0, dst=1,
            )
        names = [name for name, __ in result.phase_ns]
        assert result.retries > 0
        assert "retry" in names
        assert "backoff" in names
        # Phase nanoseconds still account for the full transfer.
        assert sum(ns for __, ns in result.phase_ns) <= result.ns + 1e-6

    def test_phase_spans_sum_to_transfer_ns(self, runtime):
        tracer = Tracer()
        with tracing(tracer), injecting(_lossy_plan()):
            result = runtime.transfer(
                strided(64, 8), CONTIGUOUS, MB,
                style=OperationStyle.CHAINED, src=0, dst=1,
            )
        phase_sum = sum(
            span.duration_ns
            for span in tracer.spans("phase")
            if span.track == "phase"
        )
        assert phase_sum == pytest.approx(result.ns, rel=1e-9)

    def test_fault_counters_traced(self, runtime):
        tracer = Tracer()
        with tracing(tracer), injecting(_lossy_plan()):
            runtime.transfer(
                strided(64, 8), CONTIGUOUS, MB,
                style=OperationStyle.CHAINED, src=0, dst=1,
            )
        counters = tracer.metrics.counters()
        assert counters.get("faults.retries", 0) > 0
        assert counters.get("faults.transfers_under_plan", 0) == 1

    def test_deterministic_replay(self, runtime):
        def run():
            with injecting(_lossy_plan()):
                return runtime.transfer(
                    strided(64, 8), CONTIGUOUS, MB,
                    style=OperationStyle.CHAINED, src=0, dst=1,
                )

        first, second = run(), run()
        assert first.ns == second.ns
        assert first.mbps == second.mbps
        assert first.retries == second.retries
        assert first.phase_ns == second.phase_ns


class TestParagon:
    def test_deposit_fault_on_paragon_falls_back(self):
        rt = CommRuntime(paragon(), rates="paper")
        with injecting(FaultPlan(seed=1, deposits=(DepositFault(),))):
            result = rt.transfer(
                CONTIGUOUS, CONTIGUOUS, MB, style=OperationStyle.CHAINED
            )
        assert result.mbps > 0
        assert result.degraded is not None
