"""Tests for the ``python -m repro faults`` subcommand."""

import json

import pytest

from repro.__main__ import EXIT_FAILURE, EXIT_OK, main
from repro.faults import FaultPlan, validate_faults_report


def _report(capsys, argv):
    code = main(argv)
    assert code == EXIT_OK
    return json.loads(capsys.readouterr().out)


class TestFaultsCommand:
    def test_text_report(self, capsys):
        assert main(["faults", "--seed", "7"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "nominal:" in out
        assert "degraded:" in out
        assert "fallback:" in out

    def test_json_report_validates(self, capsys):
        payload = _report(capsys, ["faults", "--seed", "7", "--json"])
        assert validate_faults_report(payload) == []
        assert payload["seed"] == 7
        assert payload["degraded"]["mbps"] < payload["nominal"]["mbps"]
        assert payload["delta"]["throughput_pct"] > 0

    def test_default_chaos_plan_forces_fallback(self, capsys):
        payload = _report(capsys, ["faults", "--json"])
        fallback = payload["degraded"]["fallback"]
        assert fallback is not None
        assert fallback["fallback"] == "buffer-packing"

    def test_report_is_replayable_via_plan_file(self, capsys, tmp_path):
        first = _report(capsys, ["faults", "--seed", "11", "--json"])
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(first["plan"]))
        second = _report(
            capsys, ["faults", "--plan", str(plan_path), "--json"]
        )
        assert second["degraded"] == first["degraded"]
        assert second["nominal"] == first["nominal"]

    def test_seed_reseeds_a_loaded_plan(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(FaultPlan.chaos(seed=1).to_dict()))
        payload = _report(
            capsys,
            ["faults", "--plan", str(plan_path), "--seed", "23", "--json"],
        )
        assert payload["seed"] == 23

    def test_step_mode(self, capsys):
        payload = _report(
            capsys,
            ["faults", "--step", "shift", "--nodes", "8", "--json"],
        )
        assert payload["step"] == "shift"
        assert validate_faults_report(payload) == []

    def test_missing_plan_file_fails_cleanly(self, capsys):
        assert main(["faults", "--plan", "/no/such/plan.json"]) == EXIT_FAILURE
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_corrupt_plan_file_fails_cleanly(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text("{broken")
        assert main(["faults", "--plan", str(plan_path)]) == EXIT_FAILURE
        err = capsys.readouterr().err
        assert "not valid JSON" in err

    def test_unknown_plan_fields_fail_cleanly(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({"seed": 1, "gremlins": True}))
        assert main(["faults", "--plan", str(plan_path)]) == EXIT_FAILURE
        assert "unknown fault plan fields" in capsys.readouterr().err


class TestCliRobustness:
    """Nonexistent or unreadable inputs: one-line error, documented code."""

    def test_trace_unwritable_output(self, capsys):
        code = main(
            ["trace", "--rates", "paper", "--out", "/no/such/dir/t.json"]
        )
        assert code == EXIT_FAILURE
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_calibrate_unwritable_json(self, capsys):
        code = main(
            ["calibrate", "--machine", "t3d", "--words", "256",
             "--json", "/no/such/dir/c.json"]
        )
        assert code == EXIT_FAILURE
        assert capsys.readouterr().err.startswith("error:")

    def test_lint_bad_notation(self, capsys):
        code = main(["lint", "notavalidexpr o (("])
        assert code == EXIT_FAILURE
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
