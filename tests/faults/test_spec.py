"""Tests for fault specs and the seeded, deterministic fault plan."""

import pytest

from repro.core.errors import FaultError
from repro.faults import (
    DepositFault,
    FaultPlan,
    FragmentFault,
    LinkFault,
    NodeFault,
    RetryPolicy,
    current_fault_plan,
    injecting,
)


class TestFaultSpecs:
    def test_link_derate_bounds(self):
        with pytest.raises(FaultError):
            LinkFault(derate=0.0)
        with pytest.raises(FaultError):
            LinkFault(derate=1.5)
        LinkFault(derate=1.0)
        LinkFault(derate=0.01)

    def test_link_needs_both_endpoints_or_neither(self):
        with pytest.raises(FaultError):
            LinkFault(src=0)
        with pytest.raises(FaultError):
            LinkFault(dst=3)
        LinkFault(src=0, dst=3)
        LinkFault()

    def test_failed_link_needs_endpoints(self):
        with pytest.raises(FaultError):
            LinkFault(failed=True)
        LinkFault(src=0, dst=1, failed=True)

    def test_node_slowdown_at_least_one(self):
        with pytest.raises(FaultError):
            NodeFault(node=0, slowdown=0.5)
        NodeFault(node=0, slowdown=1.0)

    def test_fragment_probabilities_bounded(self):
        with pytest.raises(FaultError):
            FragmentFault(loss=1.0)
        with pytest.raises(FaultError):
            FragmentFault(corrupt=-0.1)
        FragmentFault(loss=0.99, corrupt=0.0)


class TestFaultPlanQueries:
    def test_empty_plan(self):
        plan = FaultPlan(seed=1)
        assert plan.is_empty()
        assert plan.deposit_available(0)
        assert plan.node_slowdown(3) == 1.0
        assert plan.global_link_derate() == 1.0
        assert not plan.has_wire_faults()

    def test_global_deposit_fault_hits_every_node(self):
        plan = FaultPlan(deposits=(DepositFault(),))
        assert not plan.deposit_available(0)
        assert not plan.deposit_available(None)

    def test_per_node_deposit_fault_needs_concrete_node(self):
        plan = FaultPlan(deposits=(DepositFault(node=2),))
        assert not plan.deposit_available(2)
        assert plan.deposit_available(3)
        # An anonymous transfer cannot be pinned to the faulty node.
        assert plan.deposit_available(None)

    def test_node_slowdowns_multiply(self):
        plan = FaultPlan(
            nodes=(NodeFault(node=1, slowdown=2.0), NodeFault(node=1, slowdown=1.5))
        )
        assert plan.node_slowdown(1) == pytest.approx(3.0)
        assert plan.node_slowdown(0) == 1.0
        assert plan.node_slowdown(None) == 1.0

    def test_link_derates_combine(self):
        plan = FaultPlan(
            links=(LinkFault(derate=0.5), LinkFault(src=0, dst=1, derate=0.5))
        )
        assert plan.global_link_derate() == pytest.approx(0.5)
        assert plan.link_derate(0, 1) == pytest.approx(0.25)
        assert plan.link_derate(1, 2) == pytest.approx(0.5)

    def test_failed_links_listed(self):
        plan = FaultPlan(links=(LinkFault(src=4, dst=5, failed=True),))
        assert plan.failed_links() == frozenset({(4, 5)})

    def test_loss_probability_combines_independent_faults(self):
        plan = FaultPlan(
            fragments=(FragmentFault(loss=0.5), FragmentFault(loss=0.5))
        )
        assert plan.loss_probability() == pytest.approx(0.75)
        assert plan.has_wire_faults()


class TestDeterministicRandomness:
    def test_uniform_is_pure(self):
        plan = FaultPlan(seed=42)
        draws = [plan.uniform("a", 1, "loss") for __ in range(5)]
        assert len(set(draws)) == 1
        assert 0.0 <= draws[0] < 1.0

    def test_uniform_depends_on_seed_and_key(self):
        a = FaultPlan(seed=1).uniform("k")
        b = FaultPlan(seed=2).uniform("k")
        c = FaultPlan(seed=1).uniform("other")
        assert a != b
        assert a != c

    def test_bernoulli_zero_probability_never_fires(self):
        plan = FaultPlan(seed=3)
        assert not any(plan.bernoulli(0.0, i) for i in range(50))

    def test_bernoulli_rate_roughly_matches(self):
        plan = FaultPlan(seed=3)
        hits = sum(plan.bernoulli(0.3, i) for i in range(2000))
        assert 450 < hits < 750


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=11,
            links=(LinkFault(src=0, dst=1, failed=True), LinkFault(derate=0.7)),
            nodes=(NodeFault(node=2, slowdown=2.5),),
            deposits=(DepositFault(node=1),),
            fragments=(FragmentFault(loss=0.1, corrupt=0.05),),
            retry=RetryPolicy(max_attempts=3, granularity="message"),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"seed": 1, "bogus": []})

    def test_malformed_spec_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"links": [{"sr": 0}]})

    def test_from_json_rejects_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(FaultError):
            FaultPlan.from_json(str(path))

    def test_with_seed_only_changes_seed(self):
        plan = FaultPlan.chaos(seed=1)
        reseeded = plan.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.links == plan.links

    def test_chaos_exercises_every_fault_class(self):
        plan = FaultPlan.chaos()
        assert plan.links and plan.nodes and plan.deposits and plan.fragments
        assert len(plan.describe()) == 4


class TestInjecting:
    def test_scoped_installation(self):
        assert current_fault_plan() is None
        plan = FaultPlan(seed=5)
        with injecting(plan) as active:
            assert active is plan
            assert current_fault_plan() is plan
        assert current_fault_plan() is None

    def test_nested_plans_restore(self):
        outer, inner = FaultPlan(seed=1), FaultPlan(seed=2)
        with injecting(outer):
            with injecting(inner):
                assert current_fault_plan() is inner
            assert current_fault_plan() is outer
