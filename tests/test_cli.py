"""Tests for the command-line interface (repro.__main__)."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--machine", "cm5"])

    def test_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.machine == "t3d"
        assert args.x == "1" and args.y == "64"


class TestCommands:
    def test_machines(self, capsys):
        main(["machines"])
        out = capsys.readouterr().out
        assert "Cray T3D" in out
        assert "Intel Paragon" in out
        assert "chained" in out

    def test_estimate(self, capsys):
        main(["estimate", "--machine", "t3d", "--x", "1", "--y", "64"])
        out = capsys.readouterr().out
        assert "1Q64" in out
        assert "-> use chained" in out

    def test_estimate_verbose_shows_breakdown(self, capsys):
        main(["estimate", "--verbose"])
        out = capsys.readouterr().out
        assert "bottleneck" in out

    def test_measure(self, capsys):
        main(
            ["measure", "--machine", "t3d", "--x", "w", "--y", "w",
             "--bytes", "32768", "--style", "chained"]
        )
        out = capsys.readouterr().out
        assert "MB/s" in out
        assert "us" in out

    def test_table_prints_entries(self, capsys):
        main(["table", "--machine", "paragon"])
        out = capsys.readouterr().out
        assert "1F0" in out

    def test_table_json_export(self, tmp_path, capsys):
        path = tmp_path / "table.json"
        main(["table", "--machine", "t3d", "--json", str(path)])
        payload = json.loads(path.read_text())
        assert payload["entries"]["1C1"] == 93.0

    def test_simulated_table_source(self, capsys):
        main(["table", "--machine", "t3d", "--source", "simulated"])
        out = capsys.readouterr().out
        assert "simulated" in out


class TestAdvise:
    def test_advise_t3d(self, capsys):
        main(["advise", "--machine", "t3d"])
        out = capsys.readouterr().out
        assert "'row'" in out  # T3D: strided stores
        assert "chained" in out

    def test_advise_paragon(self, capsys):
        main(["advise", "--machine", "paragon"])
        out = capsys.readouterr().out
        assert "'col'" in out  # Paragon: strided loads

    def test_advise_custom_shape(self, capsys):
        main(
            ["advise", "--machine", "t3d", "--rows", "512", "--cols", "512",
             "--nodes", "16", "--element-words", "1"]
        )
        out = capsys.readouterr().out
        assert "predicted step time" in out


class TestTrace:
    def trace(self, *extra):
        return [
            "trace", "--machine", "t3d", "--rates", "paper", *extra
        ]

    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        from repro.trace import validate_chrome_trace

        path = tmp_path / "trace.json"
        assert main(self.trace("--out", str(path))) == 0
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        out = capsys.readouterr().out
        assert "phases:" in out
        assert "chrome://tracing" in out

    def test_phase_sum_matches_reported_ns(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(self.trace("--out", str(path), "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        meta = payload["metadata"]
        assert meta["phase_sum_ns"] == pytest.approx(
            meta["transfer_ns"], rel=1e-6
        )
        assert meta["machine"] == "Cray T3D"

    def test_json_round_trips_with_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(self.trace("--out", str(path), "--json")) == 0
        assert json.loads(capsys.readouterr().out) == json.loads(
            path.read_text()
        )

    def test_step_mode(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(
            self.trace(
                "--out", str(path), "--step", "all-to-all",
                "--nodes", "4", "--bytes", "8192",
            )
        ) == 0
        out = capsys.readouterr().out
        assert "per node" in out
        payload = json.loads(path.read_text())
        assert payload["metadata"]["step"] == "all-to-all"
        assert payload["metrics"]["step.messages_per_node"] == 3.0

    def test_timeline_rendered(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(
            self.trace("--out", str(path), "--timeline")
        ) == 0
        out = capsys.readouterr().out
        # The timeline prints one bracketed bar per track.
        assert "network" in out
        assert "[" in out and "]" in out


class TestCalibrate:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, monkeypatch, tmp_path):
        from repro.caching import default_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        default_cache().clear()

    def test_calibrate_one_machine(self, capsys):
        assert main(["calibrate", "--machine", "t3d", "--words", "2048"]) == 0
        out = capsys.readouterr().out
        assert "Cray T3D" in out
        assert "MB/s" in out

    def test_calibrate_all_machines(self, capsys):
        assert main(["calibrate", "--words", "2048"]) == 0
        out = capsys.readouterr().out
        assert "Cray T3D" in out
        assert "Intel Paragon" in out

    def test_calibrate_no_cache_leaves_cache_cold(self, capsys, tmp_path):
        assert main(
            ["calibrate", "--machine", "t3d", "--words", "2048", "--no-cache"]
        ) == 0
        assert not list((tmp_path / "cache").rglob("*.json"))

    def test_calibrate_populates_disk_cache(self, capsys, tmp_path):
        assert main(["calibrate", "--machine", "t3d", "--words", "2048"]) == 0
        assert list((tmp_path / "cache").rglob("*.json"))

    def test_calibrate_json_export(self, capsys, tmp_path):
        path = tmp_path / "table.json"
        assert main(
            ["calibrate", "--machine", "t3d", "--words", "2048",
             "--json", str(path)]
        ) == 0
        data = json.loads(path.read_text())
        assert data["entries"]


class TestVerify:
    def test_clean_shift_passes(self, capsys):
        assert main(["verify", "--step", "shift"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "fault coverage: 4/4" in out

    def test_eager_fan_in_is_flagged(self, capsys):
        code = main(
            ["verify", "--step", "fan-in", "--schedule", "eager"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "CT211" in out
        assert "node0" in out

    def test_blocking_sends_shift_deadlocks(self, capsys):
        code = main(
            ["verify", "--step", "shift",
             "--discipline", "blocking-sends"]
        )
        assert code == 1
        assert "CT212" in capsys.readouterr().out

    def test_expression_race_is_flagged(self, capsys):
        assert main(["verify", "1S0 || 1S0"]) == 1
        assert "CT211" in capsys.readouterr().out

    def test_json_payload_validates(self, capsys):
        from repro.analysis import validate_verify_report

        code = main(
            ["verify", "--step", "fan-in", "--schedule", "eager",
             "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-verify-report/1"
        assert validate_verify_report(payload) == []
        assert payload["ok"] is False

    def test_transpose_plan_target(self, capsys):
        assert main(["verify", "--plan", "transpose"]) == 0
        assert "transpose" in capsys.readouterr().out

    def test_plan_file_round_trip(self, tmp_path, capsys):
        from repro.analysis.verify.examples import step_plan

        plan = step_plan("shift", 4)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert main(["verify", "--plan", str(path)]) == 0
        assert plan.from_dict(plan.to_dict()).ops == plan.ops

    def test_rules_filter_restricts_the_run(self, capsys):
        code = main(
            ["verify", "--step", "fan-in", "--schedule", "eager",
             "--rules", "CT212"]
        )
        assert code == 0  # the race rule was filtered out

    def test_machine_none_runs_structural_passes_only(self, capsys):
        assert main(["verify", "1S0 || 1S0", "--machine", "none"]) == 1
        out = capsys.readouterr().out
        assert "CT211" in out
        assert "estimate" not in out


class TestLintDeep:
    def test_deep_appends_verifier_findings(self, capsys):
        # The duplicated send is a CT102 lint error *and* a CT211
        # verifier race; --deep reports both in one run.
        assert main(["lint", "1S0 || 1S0", "--deep"]) == 1
        out = capsys.readouterr().out
        assert "CT102" in out
        assert "CT211" in out

    def test_deep_json_carries_the_lint_schema(self, capsys):
        from repro.analysis import validate_lint_report

        assert main(
            ["lint", "--machine", "t3d", "--x", "1", "--y", "64",
             "--style", "both", "--deep", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-lint-report/1"
        assert validate_lint_report(payload) == []
