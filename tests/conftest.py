"""Shared fixtures: machines, models and small measurement harnesses.

Simulator measurements are the slow part of the suite, so fixtures are
session-scoped and use short streams; accuracy-sensitive calibration
tests use their own longer streams.
"""

from __future__ import annotations

import pytest

from repro.machines import paragon, t3d

#: Short stream length for functional (non-calibration) simulator tests.
FAST_WORDS = 4096


@pytest.fixture(scope="session")
def t3d_machine():
    return t3d()


@pytest.fixture(scope="session")
def paragon_machine():
    return paragon()


@pytest.fixture(scope="session", params=["t3d", "paragon"])
def machine(request, t3d_machine, paragon_machine):
    """Parametrized over both of the paper's machines."""
    return t3d_machine if request.param == "t3d" else paragon_machine


@pytest.fixture(scope="session")
def t3d_model(t3d_machine):
    """T3D model over the published calibration (paper's bold values)."""
    return t3d_machine.model(source="paper")


@pytest.fixture(scope="session")
def paragon_model(paragon_machine):
    return paragon_machine.model(source="paper")


@pytest.fixture(scope="session")
def t3d_node(t3d_machine):
    """A fast (short-stream) T3D memory-system harness."""
    return t3d_machine.node_memory(nwords=FAST_WORDS)


@pytest.fixture(scope="session")
def paragon_node(paragon_machine):
    return paragon_machine.node_memory(nwords=FAST_WORDS)


def within(value: float, reference: float, tolerance: float) -> bool:
    """True when ``value`` is within ``tolerance`` (fractional) of ``reference``."""
    return abs(value - reference) <= tolerance * abs(reference)
