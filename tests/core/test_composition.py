"""Tests for composition expressions (repro.core.composition)."""

import pytest

from repro.core.composition import Par, Seq, Term, as_expr, par, seq
from repro.core.errors import CompositionError
from repro.core.patterns import CONTIGUOUS, FIXED, INDEXED, strided
from repro.core.transfers import (
    copy,
    load_send,
    network_adp,
    network_data,
    receive_deposit,
    receive_store,
)
from repro.core.resources import NodeRole


def packing_op(y=strided(64)):
    """The paper's buffer-packing composition for 1Q64."""
    return seq(
        copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
        par(load_send(CONTIGUOUS), network_data(), receive_deposit(CONTIGUOUS)),
        copy(CONTIGUOUS, y, role=NodeRole.RECEIVER),
    )


class TestConstruction:
    def test_seq_flattens(self):
        a = copy(CONTIGUOUS, CONTIGUOUS)
        b = copy(CONTIGUOUS, strided(2))
        c = copy(strided(2), CONTIGUOUS)
        nested = seq(a, seq(b, c))
        assert isinstance(nested, Seq)
        assert len(nested.parts) == 3

    def test_par_flattens(self):
        grouped = par(load_send(CONTIGUOUS), par(network_data(), receive_deposit(CONTIGUOUS)))
        assert len(grouped.parts) == 3

    def test_empty_compositions_rejected(self):
        with pytest.raises(CompositionError):
            seq()
        with pytest.raises(CompositionError):
            par()

    def test_as_expr_wraps_transfers(self):
        term = as_expr(network_data())
        assert isinstance(term, Term)

    def test_as_expr_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_expr("1C1")

    def test_operator_sugar(self):
        op = load_send(CONTIGUOUS) | network_data() | receive_deposit(CONTIGUOUS)
        assert isinstance(op, Par)
        chain = copy(INDEXED, CONTIGUOUS) >> load_send(CONTIGUOUS)
        assert isinstance(chain, Seq)


class TestNotation:
    def test_paper_notation(self):
        op = packing_op()
        assert op.notation() == "1C1 o (1S0 || Nd || 0D1) o 1C64"

    def test_chained_notation(self):
        op = par(load_send(INDEXED), network_adp(), receive_deposit(INDEXED))
        assert op.notation() == "wS0 || Nadp || 0Dw"

    def test_nested_parenthesization(self):
        inner = par(network_data(), receive_deposit(CONTIGUOUS))
        op = seq(copy(CONTIGUOUS, CONTIGUOUS), inner)
        assert op.notation() == "1C1 o (Nd || 0D1)"


class TestBoundaryPatterns:
    def test_term_patterns(self):
        term = Term(copy(strided(4), INDEXED))
        assert term.read_pattern() == strided(4)
        assert term.write_pattern() == INDEXED

    def test_seq_patterns_from_ends(self):
        op = packing_op(y=strided(8))
        assert op.read_pattern() == CONTIGUOUS
        assert op.write_pattern() == strided(8)

    def test_par_unique_memory_pattern(self):
        group = par(load_send(strided(2)), network_data(), receive_deposit(INDEXED))
        assert group.read_pattern() == strided(2)
        assert group.write_pattern() == INDEXED

    def test_par_all_fixed_is_fixed(self):
        group = par(network_data(), network_adp())
        assert group.read_pattern() == FIXED

    def test_par_ambiguous_pattern_is_none(self):
        group = par(
            copy(CONTIGUOUS, CONTIGUOUS),
            copy(strided(2), strided(2), role=NodeRole.RECEIVER),
        )
        assert group.read_pattern() is None


class TestValidation:
    def test_valid_packing_operation(self):
        packing_op().validate()

    def test_sequence_pattern_mismatch_rejected(self):
        bad = seq(
            copy(CONTIGUOUS, strided(2)),
            copy(strided(4), CONTIGUOUS),
        )
        with pytest.raises(CompositionError, match="pattern mismatch"):
            bad.validate()

    def test_fixed_boundaries_are_exempt(self):
        # S writes to a FIFO (0); the following deposit reads from one.
        op = seq(load_send(CONTIGUOUS), receive_deposit(strided(64)))
        op.validate()

    def test_parallel_shared_exclusive_resource_rejected(self):
        # Two transfers on the sender CPU cannot overlap.
        bad = par(load_send(CONTIGUOUS), load_send(strided(2)))
        with pytest.raises(CompositionError, match="exclusive resource"):
            bad.validate()

    def test_parallel_shared_capacity_resource_allowed(self):
        # Deposit engine and receiver-side copy share memory (capacity),
        # which is legal; aggregate bandwidth is a constraint concern.
        group = par(
            receive_deposit(CONTIGUOUS),
            copy(CONTIGUOUS, strided(2), role=NodeRole.RECEIVER),
        )
        group.validate()

    def test_validation_recurses(self):
        inner = par(load_send(CONTIGUOUS), load_send(CONTIGUOUS))
        outer = seq(copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER), inner)
        with pytest.raises(CompositionError):
            outer.validate()


class TestTraversal:
    def test_terms_yield_left_to_right(self):
        op = packing_op()
        notations = [t.notation for t in op.terms()]
        assert notations == ["1C1", "1S0", "Nd", "0D1", "1C64"]

    def test_all_resources_union(self):
        op = packing_op()
        roles = {resource.role for resource in op.all_resources()}
        assert NodeRole.SENDER in roles
        assert NodeRole.RECEIVER in roles
