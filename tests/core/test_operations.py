"""Tests for the xQy operation builders (repro.core.operations)."""

import pytest

from repro.core.composition import Par, Seq
from repro.core.errors import CompositionError
from repro.core.operations import (
    CommCapabilities,
    DepositSupport,
    buffer_packing,
    chained,
)
from repro.core.patterns import CONTIGUOUS, FIXED, INDEXED, strided
from repro.core.transfers import TransferKind


T3D_CAPS = CommCapabilities(deposit=DepositSupport.ANY)
PARAGON_CAPS = CommCapabilities(
    deposit=DepositSupport.CONTIGUOUS,
    dma_send=True,
    coprocessor_receive=True,
)
BARE_CAPS = CommCapabilities(deposit=DepositSupport.NONE)


def kinds(expr):
    return [t.kind for t in expr.terms()]


class TestBufferPacking:
    def test_shape_matches_paper_formula(self):
        op = buffer_packing(strided(64), INDEXED, T3D_CAPS)
        assert op.notation() == "64C1 o (1S0 || Nd || 0D1) o 1Cw"

    def test_contiguous_still_copies_under_pvm_semantics(self):
        op = buffer_packing(CONTIGUOUS, CONTIGUOUS, T3D_CAPS)
        assert op.notation() == "1C1 o (1S0 || Nd || 0D1) o 1C1"

    def test_low_level_library_skips_redundant_copies(self):
        caps = CommCapabilities(
            deposit=DepositSupport.ANY, pack_even_contiguous=False
        )
        op = buffer_packing(CONTIGUOUS, CONTIGUOUS, caps)
        assert op.notation() == "1S0 || Nd || 0D1"
        # One-sided: only the needed copy is emitted.
        op = buffer_packing(CONTIGUOUS, strided(64), caps)
        assert op.notation() == "(1S0 || Nd || 0D1) o 1C64"

    def test_paragon_uses_dma_fetch_send(self):
        op = buffer_packing(CONTIGUOUS, strided(64), PARAGON_CAPS)
        assert TransferKind.FETCH_SEND in kinds(op)
        assert TransferKind.LOAD_SEND not in kinds(op)

    def test_no_deposit_engine_falls_back_to_receive_store(self):
        op = buffer_packing(CONTIGUOUS, CONTIGUOUS, BARE_CAPS)
        assert TransferKind.RECEIVE_STORE in kinds(op)

    def test_overlap_unpack_moves_scatter_into_parallel(self):
        caps = CommCapabilities(
            deposit=DepositSupport.CONTIGUOUS, dma_send=True, overlap_unpack=True
        )
        op = buffer_packing(CONTIGUOUS, strided(64), caps)
        assert isinstance(op, Seq)
        assert isinstance(op.parts[-1], Par)
        assert "1C64" in op.parts[-1].notation()

    def test_network_stage_is_always_data_only(self):
        op = buffer_packing(INDEXED, INDEXED, T3D_CAPS)
        assert TransferKind.NETWORK_DATA in kinds(op)
        assert TransferKind.NETWORK_ADP not in kinds(op)

    def test_fixed_patterns_rejected(self):
        with pytest.raises(CompositionError):
            buffer_packing(FIXED, CONTIGUOUS, T3D_CAPS)

    def test_operations_validate(self):
        for x in (CONTIGUOUS, strided(64), INDEXED):
            for y in (CONTIGUOUS, strided(64), INDEXED):
                buffer_packing(x, y, T3D_CAPS).validate()
                buffer_packing(x, y, PARAGON_CAPS).validate()


class TestChained:
    def test_contiguous_uses_data_network(self):
        op = chained(CONTIGUOUS, CONTIGUOUS, T3D_CAPS)
        assert op.notation() == "1S0 || Nd || 0D1"

    def test_noncontiguous_uses_address_data_pairs(self):
        op = chained(strided(64), strided(64), T3D_CAPS)
        assert op.notation() == "64S0 || Nadp || 0D64"

    def test_mixed_patterns_use_adp(self):
        op = chained(CONTIGUOUS, strided(64), T3D_CAPS)
        assert TransferKind.NETWORK_ADP in kinds(op)

    def test_paragon_coprocessor_receive(self):
        op = chained(strided(64), strided(64), PARAGON_CAPS)
        assert op.notation() == "64S0 || Nadp || 0R64"

    def test_paragon_contiguous_can_use_dma_deposit(self):
        op = chained(CONTIGUOUS, CONTIGUOUS, PARAGON_CAPS)
        assert TransferKind.RECEIVE_DEPOSIT in kinds(op)

    def test_no_background_receiver_rejected(self):
        with pytest.raises(CompositionError, match="no background receiver"):
            chained(CONTIGUOUS, strided(64), BARE_CAPS)

    def test_operations_validate(self):
        for x in (CONTIGUOUS, strided(64), INDEXED):
            for y in (CONTIGUOUS, strided(64), INDEXED):
                chained(x, y, T3D_CAPS).validate()
                chained(x, y, PARAGON_CAPS).validate()

    def test_chained_is_always_fully_parallel(self):
        op = chained(INDEXED, INDEXED, T3D_CAPS)
        assert isinstance(op, Par)


class TestCapabilities:
    def test_chained_receiver_availability(self):
        assert T3D_CAPS.chained_receiver_available
        assert PARAGON_CAPS.chained_receiver_available
        assert not BARE_CAPS.chained_receiver_available
