"""Tests for the resource model (repro.core.resources)."""

from repro.core.resources import NodeRole, Resource, ResourceUnit, resources


class TestResource:
    def test_exclusivity_split(self):
        exclusive = {
            ResourceUnit.CPU,
            ResourceUnit.COPROCESSOR,
            ResourceUnit.DMA,
            ResourceUnit.DEPOSIT,
        }
        for unit in ResourceUnit:
            assert unit.is_exclusive == (unit in exclusive)

    def test_resource_identity_includes_role(self):
        sender = Resource(ResourceUnit.CPU, NodeRole.SENDER)
        receiver = Resource(ResourceUnit.CPU, NodeRole.RECEIVER)
        assert sender != receiver
        assert len({sender, receiver}) == 2

    def test_resource_str(self):
        assert str(Resource(ResourceUnit.DMA, NodeRole.SENDER)) == "sender:dma"

    def test_resources_helper(self):
        bundle = resources(NodeRole.LOCAL, ResourceUnit.CPU, ResourceUnit.MEMORY)
        assert len(bundle) == 2
        assert all(r.role is NodeRole.LOCAL for r in bundle)

    def test_exclusive_propagates(self):
        assert Resource(ResourceUnit.CPU, NodeRole.LOCAL).is_exclusive
        assert not Resource(ResourceUnit.MEMORY, NodeRole.LOCAL).is_exclusive
