"""Tests for access patterns (repro.core.patterns)."""

import pytest

from repro.core.errors import PatternError
from repro.core.patterns import (
    CONTIGUOUS,
    FIXED,
    INDEXED,
    AccessPattern,
    PatternKind,
    strided,
)


class TestConstruction:
    def test_fixed_singleton_properties(self):
        assert FIXED.is_fixed
        assert not FIXED.is_memory_pattern
        assert FIXED.subscript == "0"

    def test_contiguous_properties(self):
        assert CONTIGUOUS.is_contiguous
        assert CONTIGUOUS.is_memory_pattern
        assert CONTIGUOUS.subscript == "1"

    def test_indexed_properties(self):
        assert INDEXED.is_indexed
        assert INDEXED.subscript == "w"
        assert INDEXED.needs_addresses_on_wire

    def test_strided_basic(self):
        p = strided(64)
        assert p.is_strided
        assert p.stride == 64
        assert p.block == 1
        assert p.subscript == "64"
        assert p.needs_addresses_on_wire

    def test_strided_blocked(self):
        p = strided(64, block=2)
        assert p.block == 2
        assert p.subscript == "64x2"

    def test_contiguous_does_not_need_addresses(self):
        assert not CONTIGUOUS.needs_addresses_on_wire

    def test_classmethod_constructors_match_constants(self):
        assert AccessPattern.fixed() == FIXED
        assert AccessPattern.contiguous() == CONTIGUOUS
        assert AccessPattern.indexed() == INDEXED
        assert AccessPattern.strided(8) == strided(8)


class TestValidation:
    @pytest.mark.parametrize("bad_stride", [1, 0, -3, None])
    def test_strided_requires_stride_at_least_two(self, bad_stride):
        with pytest.raises(PatternError):
            AccessPattern(PatternKind.STRIDED, stride=bad_stride)

    def test_block_must_be_smaller_than_stride(self):
        with pytest.raises(PatternError):
            strided(4, block=4)
        with pytest.raises(PatternError):
            strided(4, block=0)

    def test_non_strided_rejects_stride(self):
        with pytest.raises(PatternError):
            AccessPattern(PatternKind.CONTIGUOUS, stride=4)

    def test_non_strided_rejects_block(self):
        with pytest.raises(PatternError):
            AccessPattern(PatternKind.INDEXED, block=2)


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert strided(16) == strided(16)
        assert strided(16) != strided(32)
        assert len({strided(16), strided(16), strided(32)}) == 2

    def test_patterns_key_dictionaries(self):
        table = {CONTIGUOUS: 1, strided(64): 2, INDEXED: 3}
        assert table[AccessPattern.strided(64)] == 2

    def test_blocked_and_plain_strided_differ(self):
        assert strided(16, block=2) != strided(16)


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", FIXED),
            ("1", CONTIGUOUS),
            ("64", strided(64)),
            ("2", strided(2)),
            ("w", INDEXED),
            ("ω", INDEXED),
            ("omega", INDEXED),
            ("64x2", strided(64, block=2)),
            ("  16 ", strided(16)),
        ],
    )
    def test_parse_valid(self, text, expected):
        assert AccessPattern.parse(text) == expected

    @pytest.mark.parametrize("text", ["", "x", "1.5", "-4", "64x", "ax2"])
    def test_parse_invalid(self, text):
        with pytest.raises(PatternError):
            AccessPattern.parse(text)

    def test_parse_roundtrips_subscript(self):
        for pattern in (FIXED, CONTIGUOUS, INDEXED, strided(7), strided(9, block=3)):
            assert AccessPattern.parse(pattern.subscript) == pattern

    def test_str_is_subscript(self):
        assert str(strided(12)) == "12"


class TestMatching:
    def test_matches_is_equality(self):
        assert CONTIGUOUS.matches(CONTIGUOUS)
        assert not CONTIGUOUS.matches(strided(2))
        assert strided(8).matches(strided(8))
