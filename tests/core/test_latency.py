"""Tests for the latency extension (repro.core.latency)."""

import pytest

from repro.core.errors import ModelError
from repro.core.latency import LatencyModel


class TestPredictions:
    def test_time_is_affine(self):
        model = LatencyModel(startup_ns=10_000.0, asymptotic_mbps=100.0)
        assert model.time_ns(0) == 10_000.0
        assert model.time_ns(1000) == 10_000.0 + 10_000.0

    def test_throughput_approaches_asymptote(self):
        model = LatencyModel(startup_ns=10_000.0, asymptotic_mbps=100.0)
        assert model.throughput(1 << 30) == pytest.approx(100.0, rel=1e-3)

    def test_half_performance_length(self):
        model = LatencyModel(startup_ns=10_000.0, asymptotic_mbps=100.0)
        n_half = model.half_performance_bytes
        assert n_half == pytest.approx(1000.0)
        assert model.throughput(int(n_half)) == pytest.approx(50.0)

    def test_throughput_monotone_in_size(self):
        model = LatencyModel(startup_ns=5_000.0, asymptotic_mbps=60.0)
        sizes = [64, 1024, 65536, 1 << 20]
        rates = [model.throughput(n) for n in sizes]
        assert rates == sorted(rates)

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            LatencyModel(startup_ns=-1.0, asymptotic_mbps=10.0)
        with pytest.raises(ModelError):
            LatencyModel(startup_ns=0.0, asymptotic_mbps=0.0)

    def test_invalid_size(self):
        model = LatencyModel(startup_ns=0.0, asymptotic_mbps=10.0)
        with pytest.raises(ModelError):
            model.throughput(0)


class TestFitting:
    def test_exact_recovery_from_model_samples(self):
        truth = LatencyModel(startup_ns=20_000.0, asymptotic_mbps=80.0)
        curve = [(n, truth.throughput(n)) for n in (256, 4096, 65536, 1 << 20)]
        fitted = LatencyModel.fit(curve)
        assert fitted.startup_ns == pytest.approx(truth.startup_ns, rel=1e-6)
        assert fitted.asymptotic_mbps == pytest.approx(
            truth.asymptotic_mbps, rel=1e-6
        )

    def test_fit_on_simulated_sweep(self, t3d_machine):
        from repro.bench import figure1

        curve = figure1(t3d_machine)["PVM"]
        fitted = LatencyModel.fit(curve)
        # PVM's fixed overhead is ~126 us per message in our profile.
        assert 50_000 < fitted.startup_ns < 400_000
        assert 10 < fitted.asymptotic_mbps < 30

    def test_fit_requires_two_sizes(self):
        with pytest.raises(ModelError):
            LatencyModel.fit([(1024, 10.0), (1024, 10.0)])

    def test_fit_rejects_nonpositive_rates(self):
        with pytest.raises(ModelError):
            LatencyModel.fit([(1024, 10.0), (2048, -1.0)])

    def test_str_mentions_all_parameters(self):
        text = str(LatencyModel(startup_ns=10_000.0, asymptotic_mbps=100.0))
        assert "t0" in text and "B=" in text and "n1/2" in text
