"""Tests for basic transfers (repro.core.transfers)."""

import pytest

from repro.core.errors import PatternError
from repro.core.patterns import CONTIGUOUS, FIXED, INDEXED, strided
from repro.core.resources import NodeRole, ResourceUnit
from repro.core.transfers import (
    TransferKind,
    copy,
    fetch_send,
    load_send,
    network_adp,
    network_data,
    receive_deposit,
    receive_store,
)


def units(transfer):
    return {resource.unit for resource in transfer.uses}


def roles(transfer):
    return {resource.role for resource in transfer.uses}


class TestNotation:
    def test_copy_notation(self):
        assert copy(CONTIGUOUS, strided(64)).notation == "1C64"
        assert copy(INDEXED, CONTIGUOUS).notation == "wC1"

    def test_send_receive_notation(self):
        assert load_send(CONTIGUOUS).notation == "1S0"
        assert fetch_send(CONTIGUOUS).notation == "1F0"
        assert receive_store(strided(64)).notation == "0R64"
        assert receive_deposit(INDEXED).notation == "0Dw"

    def test_network_notation(self):
        assert network_data().notation == "Nd"
        assert network_adp().notation == "Nadp"

    def test_str_matches_notation(self):
        transfer = copy(CONTIGUOUS, CONTIGUOUS)
        assert str(transfer) == transfer.notation


class TestValidation:
    def test_send_requires_memory_read(self):
        with pytest.raises(PatternError):
            load_send(FIXED)

    def test_deposit_requires_memory_write(self):
        with pytest.raises(PatternError):
            receive_deposit(FIXED)

    def test_copy_rejects_fixed_ends(self):
        with pytest.raises(PatternError):
            copy(FIXED, CONTIGUOUS)
        with pytest.raises(PatternError):
            copy(CONTIGUOUS, FIXED)


class TestResources:
    def test_copy_uses_cpu_and_memory(self):
        transfer = copy(CONTIGUOUS, CONTIGUOUS)
        assert ResourceUnit.CPU in units(transfer)
        assert ResourceUnit.MEMORY in units(transfer)

    def test_copy_role_defaults_local_and_is_settable(self):
        assert roles(copy(CONTIGUOUS, CONTIGUOUS)) == {NodeRole.LOCAL}
        sender_copy = copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER)
        assert roles(sender_copy) == {NodeRole.SENDER}

    def test_load_send_is_a_sender_cpu_transfer(self):
        transfer = load_send(strided(64))
        assert ResourceUnit.CPU in units(transfer)
        assert roles(transfer) == {NodeRole.SENDER}

    def test_fetch_send_uses_dma_not_cpu(self):
        transfer = fetch_send(CONTIGUOUS)
        assert ResourceUnit.DMA in units(transfer)
        assert ResourceUnit.CPU not in units(transfer)

    def test_receive_deposit_uses_deposit_engine(self):
        transfer = receive_deposit(strided(64))
        assert ResourceUnit.DEPOSIT in units(transfer)
        assert ResourceUnit.CPU not in units(transfer)
        assert roles(transfer) == {NodeRole.RECEIVER}

    def test_receive_store_coprocessor_flag(self):
        main = receive_store(CONTIGUOUS)
        coproc = receive_store(CONTIGUOUS, coprocessor=True)
        assert ResourceUnit.CPU in units(main)
        assert ResourceUnit.COPROCESSOR in units(coproc)
        assert ResourceUnit.CPU not in units(coproc)

    def test_network_uses_only_network(self):
        assert units(network_data()) == {ResourceUnit.NETWORK}


class TestKindPredicates:
    def test_network_kinds(self):
        assert TransferKind.NETWORK_DATA.is_network
        assert TransferKind.NETWORK_ADP.is_network
        assert not TransferKind.COPY.is_network

    def test_background_kinds(self):
        assert TransferKind.FETCH_SEND.is_background
        assert TransferKind.RECEIVE_DEPOSIT.is_background
        assert not TransferKind.LOAD_SEND.is_background
        assert not TransferKind.RECEIVE_STORE.is_background

    def test_exclusive_units(self):
        assert ResourceUnit.CPU.is_exclusive
        assert ResourceUnit.DEPOSIT.is_exclusive
        assert not ResourceUnit.MEMORY.is_exclusive
        assert not ResourceUnit.NETWORK.is_exclusive
