"""Tests for resource constraints (repro.core.constraints)."""

import pytest

from repro.core.calibration import ThroughputTable
from repro.core.constraints import (
    EntryRef,
    ResourceConstraint,
    duplex_memory_constraint,
)
from repro.core.errors import ConstraintError
from repro.core.patterns import CONTIGUOUS, strided
from repro.core.transfers import TransferKind


@pytest.fixture
def table():
    t = ThroughputTable("constraints")
    t.set(TransferKind.COPY, "1", "1", 93.0)
    t.set(TransferKind.COPY, "1", 64, 67.9)
    return t


class TestResourceConstraint:
    def test_literal_limit(self):
        c = ResourceConstraint("bus", demand=2.0, capacity=400.0)
        assert c.limit(None) == 200.0

    def test_entry_ref_limit(self, table):
        c = ResourceConstraint(
            "mem", demand=2.0, capacity=EntryRef(TransferKind.COPY, "1", "1")
        )
        assert c.limit(table) == 46.5

    def test_entry_ref_with_pattern_objects(self, table):
        c = ResourceConstraint(
            "mem",
            demand=1.0,
            capacity=EntryRef(TransferKind.COPY, CONTIGUOUS, strided(64)),
        )
        assert c.limit(table) == 67.9

    def test_entry_ref_needs_table(self, table):
        c = ResourceConstraint(
            "mem", demand=1.0, capacity=EntryRef(TransferKind.COPY, "1", "1")
        )
        with pytest.raises(ConstraintError, match="none was supplied"):
            c.limit(None)

    def test_invalid_demand(self):
        with pytest.raises(ConstraintError):
            ResourceConstraint("bad", demand=0.0, capacity=10.0)

    def test_invalid_capacity(self):
        with pytest.raises(ConstraintError):
            ResourceConstraint("bad", demand=1.0, capacity=-5.0)


class TestDuplexMemoryConstraint:
    def test_default_is_the_paper_formula(self, table):
        """(2 x |xQy|) < |C| from Section 3.4.1."""
        c = duplex_memory_constraint()
        assert c.demand == 2.0
        assert c.limit(table) == 93.0 / 2.0

    def test_custom_patterns(self, table):
        c = duplex_memory_constraint(write=strided(64))
        assert c.limit(table) == pytest.approx(67.9 / 2.0)
