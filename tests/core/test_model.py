"""Tests for the model facade (repro.core.model)."""

import pytest

from repro.core.errors import ModelError
from repro.core.model import CopyTransferModel
from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, INDEXED, strided


class TestBuildAndEstimate:
    def test_style_coercion(self, t3d_model):
        by_enum = t3d_model.estimate(CONTIGUOUS, CONTIGUOUS, OperationStyle.CHAINED)
        by_value = t3d_model.estimate(CONTIGUOUS, CONTIGUOUS, "chained")
        by_name = t3d_model.estimate(CONTIGUOUS, CONTIGUOUS, "CHAINED")
        assert by_enum.mbps == by_value.mbps == by_name.mbps

    def test_unknown_style_rejected(self, t3d_model):
        with pytest.raises(ModelError, match="unknown operation style"):
            t3d_model.estimate(CONTIGUOUS, CONTIGUOUS, "smuggled")

    def test_build_returns_composition(self, t3d_model):
        expr = t3d_model.build(strided(64), CONTIGUOUS, "buffer-packing")
        assert "64C1" in expr.notation()

    def test_estimates_are_positive(self, machine):
        model = machine.model(source="paper")
        for x in (CONTIGUOUS, strided(64), INDEXED):
            for y in (CONTIGUOUS, strided(64), INDEXED):
                assert model.estimate(x, y, "buffer-packing").mbps > 0
                assert model.estimate(x, y, "chained").mbps > 0


class TestChoose:
    def test_chained_wins_for_noncontiguous_on_t3d(self, t3d_model):
        choice = t3d_model.choose(CONTIGUOUS, strided(64))
        assert choice.style is OperationStyle.CHAINED
        assert choice.alternatives  # buffer-packing was considered
        style, estimate = choice.alternatives[0]
        assert style is OperationStyle.BUFFER_PACKING
        assert estimate.mbps < choice.mbps

    def test_chained_wins_for_indexed_on_both(self, t3d_model, paragon_model):
        for model in (t3d_model, paragon_model):
            choice = model.choose(INDEXED, INDEXED)
            assert choice.style is OperationStyle.CHAINED

    def test_choice_exposes_throughput(self, t3d_model):
        choice = t3d_model.choose(CONTIGUOUS, CONTIGUOUS)
        assert choice.mbps == choice.estimate.mbps


class TestNotation:
    def test_q_notation(self, t3d_model):
        assert t3d_model.q_notation(CONTIGUOUS, strided(64), "buffer-packing") == "1Q64"
        assert t3d_model.q_notation(INDEXED, INDEXED, "chained") == "wQ'w"
