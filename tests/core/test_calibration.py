"""Tests for throughput tables (repro.core.calibration)."""

import pytest

from repro.core.calibration import ThroughputTable, pattern_key
from repro.core.errors import CalibrationError
from repro.core.patterns import CONTIGUOUS, FIXED, INDEXED, strided
from repro.core.transfers import TransferKind, copy, load_send, network_data


@pytest.fixture
def table():
    t = ThroughputTable("test")
    t.set(TransferKind.COPY, "1", "1", 93.0)
    t.set(TransferKind.COPY, "1", 16, 70.8)
    t.set(TransferKind.COPY, "1", 64, 67.9)
    t.set(TransferKind.COPY, 64, "1", 33.3)
    t.set(TransferKind.COPY, "1", "w", 38.5)
    t.set(TransferKind.LOAD_SEND, "1", "0", 126.0)
    t.set(TransferKind.NETWORK_DATA, "0", "0", 69.0)
    return t


class TestPatternKey:
    def test_keys(self):
        assert pattern_key(FIXED) == "0"
        assert pattern_key(CONTIGUOUS) == "1"
        assert pattern_key(INDEXED) == "w"
        assert pattern_key(strided(48)) == 48

    def test_blocked_stride_keys_by_stride(self):
        assert pattern_key(strided(48, block=2)) == 48


class TestSetAndGet:
    def test_exact_lookup(self, table):
        assert table.lookup(copy(CONTIGUOUS, strided(64))) == 67.9
        assert table.lookup(load_send(CONTIGUOUS)) == 126.0
        assert table.lookup(network_data()) == 69.0

    def test_set_transfer_convenience(self):
        t = ThroughputTable()
        t.set_transfer(copy(INDEXED, CONTIGUOUS), 32.9)
        assert t.get(TransferKind.COPY, "w", "1") == 32.9

    def test_rejects_nonpositive_rates(self):
        t = ThroughputTable()
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(CalibrationError):
                t.set(TransferKind.COPY, "1", "1", bad)

    def test_get_returns_none_for_missing(self, table):
        assert table.get(TransferKind.COPY, "w", "w") is None

    def test_has(self, table):
        assert table.has(TransferKind.COPY, "1", 64)
        assert not table.has(TransferKind.COPY, "1", 65)

    def test_len_and_iter(self, table):
        assert len(table) == 7
        keys = [key for key, __ in table]
        assert len(keys) == 7

    def test_merge(self, table):
        other = ThroughputTable("other")
        other.set(TransferKind.COPY, "1", "1", 50.0)
        other.set(TransferKind.COPY, "w", "1", 32.9)
        table.merge(other)
        assert table.get(TransferKind.COPY, "1", "1") == 50.0
        assert table.get(TransferKind.COPY, "w", "1") == 32.9

    def test_merge_without_overwrite(self, table):
        other = ThroughputTable("other")
        other.set(TransferKind.COPY, "1", "1", 50.0)
        table.merge(other, overwrite=False)
        assert table.get(TransferKind.COPY, "1", "1") == 93.0

    def test_to_dict_notation_keys(self, table):
        d = table.to_dict()
        assert d["1C64"] == 67.9
        assert d["1S0"] == 126.0
        assert d["Nd"] == 69.0


class TestStrideInterpolation:
    def test_large_stride_uses_largest_anchor(self, table):
        # The paper's rule: stride 64 applies to any larger stride.
        assert table.lookup(copy(CONTIGUOUS, strided(1024))) == 67.9

    def test_between_anchors_interpolates(self, table):
        rate = table.lookup(copy(CONTIGUOUS, strided(32)))
        assert 67.9 < rate < 70.8

    def test_interpolation_is_log_scaled(self, table):
        # stride 32 is exactly halfway between 16 and 64 in log2.
        rate = table.lookup(copy(CONTIGUOUS, strided(32)))
        assert rate == pytest.approx((70.8 + 67.9) / 2)

    def test_below_smallest_anchor_uses_contiguous_anchor(self, table):
        rate = table.lookup(copy(CONTIGUOUS, strided(2)))
        assert 70.8 < rate < 93.0

    def test_read_side_interpolation(self, table):
        # Only one anchor on the read side: all strides collapse to it.
        assert table.lookup(copy(strided(8), CONTIGUOUS)) < 93.0

    def test_missing_anchor_family_raises(self, table):
        with pytest.raises(CalibrationError, match="no strided"):
            table.lookup(load_send(strided(8)))


class TestTwoSidedStrided:
    def test_two_sided_approximation(self, table):
        table.set(TransferKind.COPY, 16, "1", 34.4)
        rate = table.lookup(copy(strided(16), strided(16)))
        # 1/r = 1/34.4 + 1/70.8 - 1/93: slower than either one-sided rate.
        assert rate < 34.4
        assert rate == pytest.approx(1.0 / (1 / 34.4 + 1 / 70.8 - 1 / 93.0))

    def test_two_sided_needs_contiguous_base(self):
        t = ThroughputTable()
        t.set(TransferKind.COPY, "1", 16, 50.0)
        t.set(TransferKind.COPY, 16, "1", 40.0)
        with pytest.raises(CalibrationError, match="1C1"):
            t.lookup(copy(strided(16), strided(16)))


class TestErrors:
    def test_missing_entry_names_the_key(self, table):
        with pytest.raises(CalibrationError, match="wC1"):
            table.lookup(copy(INDEXED, CONTIGUOUS))

    def test_invalid_pattern_key_rejected(self):
        t = ThroughputTable()
        with pytest.raises(CalibrationError):
            t.set(TransferKind.COPY, "q", "1", 10.0)
