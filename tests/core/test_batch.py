"""Unit coverage for the batched query engine (repro.core.batch).

The bit-identity *property* lives in
``tests/properties/test_batch_parity.py``; these tests pin the unit
contracts — shape grouping, scalar-ordered fallback, duplicate
memoization, advisor tie-breaking, and the vectorized pipeline
recurrence against :class:`repro.runtime.stages.StagePipeline`.
"""

import numpy as np
import pytest

from repro.core.batch import (
    BATCH_VERSION,
    BatchChoice,
    advise_many,
    estimate_many,
    evaluate_many,
    expr_shape,
    solve_pipeline_group,
)
from repro.core.composition import Par, Seq, Term
from repro.core.errors import ModelError
from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.core.throughput import evaluate
from repro.core.transfers import copy as copy_transfer


@pytest.fixture
def model(t3d_machine):
    return t3d_machine.model(source="paper")


def _grid_queries():
    pairs = [
        (CONTIGUOUS, CONTIGUOUS),
        (CONTIGUOUS, strided(64)),
        (strided(64), CONTIGUOUS),
        (CONTIGUOUS, INDEXED),
        (INDEXED, CONTIGUOUS),
        (INDEXED, INDEXED),
    ]
    return [
        (x, y, style) for x, y in pairs for style in OperationStyle
    ]


class TestExprShape:
    def test_terms_share_a_shape(self):
        a = Term(copy_transfer(CONTIGUOUS, CONTIGUOUS))
        b = Term(copy_transfer(strided(8), INDEXED))
        assert expr_shape(a) == expr_shape(b) == ("T",)

    def test_structure_distinguishes_par_from_seq(self):
        t = Term(copy_transfer(CONTIGUOUS, CONTIGUOUS))
        assert expr_shape(Par((t, t))) != expr_shape(Seq((t, t)))

    def test_leaf_count_participates(self):
        t = Term(copy_transfer(CONTIGUOUS, CONTIGUOUS))
        assert expr_shape(Seq((t, t))) != expr_shape(Seq((t, t, t)))


class TestEvaluateMany:
    def test_matches_scalar_loop_bitwise(self, model):
        exprs = [
            model.build(x, y, style) for x, y, style in _grid_queries()
        ]
        batched = evaluate_many(
            exprs, model.table, constraints=tuple(model.constraints)
        )
        scalar = [
            evaluate(
                expr, model.table, constraints=tuple(model.constraints)
            ).mbps
            for expr in exprs
        ]
        assert batched == scalar  # == on floats: bitwise for finite values

    def test_first_error_matches_the_loop(self, model):
        good = model.build(CONTIGUOUS, strided(64), OperationStyle.CHAINED)
        # A transfer with no calibration entry is a scalar-error lane.
        bad = Term(copy_transfer(INDEXED, INDEXED))
        with pytest.raises(ModelError) as batch_err:
            evaluate_many([good, bad, bad], model.table)
        with pytest.raises(ModelError) as scalar_err:
            for expr in (good, bad, bad):
                evaluate(expr, model.table)
        assert str(batch_err.value) == str(scalar_err.value)


class TestEstimateMany:
    def test_matches_scalar_estimates(self, model):
        queries = _grid_queries()
        batched = estimate_many(model, queries)
        scalar = [
            model.estimate(x, y, style).mbps for x, y, style in queries
        ]
        assert batched == scalar

    def test_duplicates_are_built_once(self, model, monkeypatch):
        calls = []
        original = model.build

        def counting(x, y, style):
            calls.append((x, y, style))
            return original(x, y, style)

        monkeypatch.setattr(model, "build", counting)
        query = (CONTIGUOUS, strided(64), OperationStyle.CHAINED)
        values = estimate_many(model, [query] * 5)
        assert len(set(values)) == 1
        assert len(calls) == 1


class TestAdviseMany:
    def test_agrees_with_scalar_advisor(self, model):
        pairs = [
            (CONTIGUOUS, CONTIGUOUS),
            (CONTIGUOUS, strided(64)),
            (INDEXED, CONTIGUOUS),
            (INDEXED, INDEXED),
        ]
        choices = advise_many(model, pairs)
        for (x, y), choice in zip(pairs, choices):
            scalar = model.choose(x, y)
            assert isinstance(choice, BatchChoice)
            assert choice.style is scalar.style
            assert choice.mbps == scalar.estimate.mbps

    def test_infeasible_pair_raises_model_error(self, model):
        # The advisor contract: at least buffer-packing always builds,
        # so force infeasibility by emptying the style space.
        class NoStyles:
            table = model.table
            constraints = ()

            def build(self, x, y, style):
                from repro.core.errors import CompositionError

                raise CompositionError("nothing builds")

        with pytest.raises(ModelError, match="no feasible"):
            advise_many(NoStyles(), [(CONTIGUOUS, CONTIGUOUS)])


class TestSolvePipelineGroup:
    def test_matches_stage_pipeline_bitwise(self):
        from repro.runtime.stages import Stage, StagePipeline

        nbytes = 100_000
        lane_rates = [(120.0, 80.0, 300.0), (45.0, 90.0, 60.0)]
        stages_per_lane = []
        for rates in lane_rates:
            stages_per_lane.append([
                Stage("load", rates[0], "memory",
                      chunk_overhead_ns=25.0, startup_ns=400.0),
                Stage("wire", rates[1], "network",
                      chunk_overhead_ns=10.0, startup_ns=0.0),
                Stage("store", rates[2], "memory",
                      chunk_overhead_ns=25.0, startup_ns=100.0),
            ])
        chunk_bytes = 512 * 8
        scalar = [
            StagePipeline(stages).run(nbytes, chunk_bytes=chunk_bytes).ns
            for stages in stages_per_lane
        ]
        structure = (chunk_bytes, (0, 1, 0))  # memory shared, slot 0
        rates = np.array(
            [[row[i] for row in lane_rates] for i in range(3)],
            dtype=np.float64,
        )
        overheads = np.array(
            [[25.0] * 2, [10.0] * 2, [25.0] * 2], dtype=np.float64
        )
        startups = np.array(
            [[400.0] * 2, [0.0] * 2, [100.0] * 2], dtype=np.float64
        )
        batched = solve_pipeline_group(
            nbytes, [structure], [rates], [overheads], [startups]
        )
        assert list(batched) == scalar

    def test_phase_totals_accumulate_in_order(self):
        nbytes = 4096
        structure = (4096, (0,))
        ones = np.array([[100.0]], dtype=np.float64)
        zeros = np.zeros((1, 1), dtype=np.float64)
        one_phase = solve_pipeline_group(
            nbytes, [structure], [ones], [zeros], [zeros]
        )
        two_phases = solve_pipeline_group(
            nbytes,
            [structure, structure],
            [ones, ones],
            [zeros, zeros],
            [zeros, zeros],
        )
        assert two_phases[0] == one_phase[0] + one_phase[0]


def test_batch_version_is_a_string():
    assert isinstance(BATCH_VERSION, str) and BATCH_VERSION
