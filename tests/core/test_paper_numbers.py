"""Gold tests: the model reproduces the paper's printed estimates.

Sections 3.4.1, 5.1.1-5.1.4 and Table 5 print model throughput numbers
for the T3D and Paragon.  Evaluating our composition builders over the
published calibration tables must land on (or very near) those
figures — this is the primary correctness check of the algebra.
"""

import pytest

from repro.core.patterns import CONTIGUOUS, INDEXED, strided


def estimate(model, x, y, style):
    return model.estimate(x, y, style).mbps


class TestT3DBufferPacking:
    """Section 5.1.1 printed estimates."""

    def test_1q1(self, t3d_model):
        assert estimate(t3d_model, CONTIGUOUS, CONTIGUOUS, "buffer-packing") == (
            pytest.approx(27.9, rel=0.02)
        )

    def test_1q64(self, t3d_model):
        assert estimate(t3d_model, CONTIGUOUS, strided(64), "buffer-packing") == (
            pytest.approx(25.2, rel=0.02)
        )

    def test_64q1(self, t3d_model):
        assert estimate(t3d_model, strided(64), CONTIGUOUS, "buffer-packing") == (
            pytest.approx(17.1, rel=0.07)
        )

    def test_wqw(self, t3d_model):
        assert estimate(t3d_model, INDEXED, INDEXED, "buffer-packing") == (
            pytest.approx(14.2, rel=0.02)
        )

    def test_section_341_transpose_example(self, t3d_model):
        """|1Q1024| estimated at 25.0 MB/s for the 1024x1024 transpose."""
        assert estimate(
            t3d_model, CONTIGUOUS, strided(1024), "buffer-packing"
        ) == pytest.approx(25.0, rel=0.02)


class TestT3DChained:
    """Section 5.1.2 printed estimates."""

    def test_1q1_chained(self, t3d_model):
        assert estimate(t3d_model, CONTIGUOUS, CONTIGUOUS, "chained") == (
            pytest.approx(70.0, rel=0.02)
        )

    def test_1q64_chained(self, t3d_model):
        assert estimate(t3d_model, CONTIGUOUS, strided(64), "chained") == (
            pytest.approx(38.0, rel=0.01)
        )

    def test_wqw_chained(self, t3d_model):
        assert estimate(t3d_model, INDEXED, INDEXED, "chained") == (
            pytest.approx(32.0, rel=0.01)
        )


class TestParagonBufferPacking:
    """Section 5.1.3 printed estimates (DMA fetch-send middle stage)."""

    def test_1q64(self, paragon_model):
        assert estimate(paragon_model, CONTIGUOUS, strided(64), "buffer-packing") == (
            pytest.approx(16.1, rel=0.02)
        )

    def test_16q64(self, paragon_model):
        assert estimate(
            paragon_model, strided(16), strided(64), "buffer-packing"
        ) == pytest.approx(14.9, rel=0.02)

    def test_wqw(self, paragon_model):
        assert estimate(paragon_model, INDEXED, INDEXED, "buffer-packing") == (
            pytest.approx(16.2, rel=0.02)
        )

    def test_1q1_within_band(self, paragon_model):
        # The paper prints 20.7; its own formula with 1F0 gives ~24.6.
        # We follow the formula and accept the published number's band.
        rate = estimate(paragon_model, CONTIGUOUS, CONTIGUOUS, "buffer-packing")
        assert 19.0 <= rate <= 25.5


class TestParagonChained:
    """Section 5.1.4 printed estimates."""

    def test_1q1_chained(self, paragon_model):
        assert estimate(paragon_model, CONTIGUOUS, CONTIGUOUS, "chained") == (
            pytest.approx(52.0, rel=0.01)
        )

    def test_1q64_chained(self, paragon_model):
        assert estimate(paragon_model, CONTIGUOUS, strided(64), "chained") == (
            pytest.approx(38.0, rel=0.01)
        )

    def test_16q64_chained(self, paragon_model):
        assert estimate(paragon_model, strided(16), strided(64), "chained") == (
            pytest.approx(38.0, rel=0.01)
        )

    def test_wqw_chained(self, paragon_model):
        assert estimate(paragon_model, INDEXED, INDEXED, "chained") == (
            pytest.approx(36.0, rel=0.01)
        )


class TestTable5:
    """Strided loads vs strided stores (Table 5 model columns)."""

    def test_t3d_1q16(self, t3d_model):
        assert estimate(t3d_model, CONTIGUOUS, strided(16), "buffer-packing") == (
            pytest.approx(25.4, rel=0.02)
        )
        assert estimate(t3d_model, CONTIGUOUS, strided(16), "chained") == (
            pytest.approx(38.0, rel=0.01)
        )

    def test_t3d_16q1(self, t3d_model):
        assert estimate(t3d_model, strided(16), CONTIGUOUS, "buffer-packing") == (
            pytest.approx(18.4, rel=0.02)
        )
        assert estimate(t3d_model, strided(16), CONTIGUOUS, "chained") == (
            pytest.approx(38.0, rel=0.01)
        )

    def test_paragon_1q16(self, paragon_model):
        assert estimate(paragon_model, CONTIGUOUS, strided(16), "buffer-packing") == (
            pytest.approx(18.3, rel=0.03)
        )
        assert estimate(paragon_model, CONTIGUOUS, strided(16), "chained") == (
            pytest.approx(32.0, rel=0.01)
        )

    def test_paragon_16q1(self, paragon_model):
        assert estimate(paragon_model, strided(16), CONTIGUOUS, "buffer-packing") == (
            pytest.approx(20.7, rel=0.07)
        )
        assert estimate(paragon_model, strided(16), CONTIGUOUS, "chained") == (
            pytest.approx(42.0, rel=0.01)
        )

    def test_preferred_direction_flips_between_machines(
        self, t3d_model, paragon_model
    ):
        """Section 5.2: strided stores win on the T3D, strided loads on
        the Paragon — for buffer packing, where the local copies bind."""
        t3d_stores = estimate(t3d_model, CONTIGUOUS, strided(16), "buffer-packing")
        t3d_loads = estimate(t3d_model, strided(16), CONTIGUOUS, "buffer-packing")
        assert t3d_stores > t3d_loads

        par_stores = estimate(paragon_model, CONTIGUOUS, strided(16), "buffer-packing")
        par_loads = estimate(paragon_model, strided(16), CONTIGUOUS, "buffer-packing")
        assert par_loads > par_stores


class TestHeadlineResult:
    """Chained beats buffer packing for non-contiguous patterns."""

    @pytest.mark.parametrize(
        "x,y",
        [
            (CONTIGUOUS, strided(64)),
            (strided(64), CONTIGUOUS),
            (strided(16), strided(64)),
            (INDEXED, INDEXED),
        ],
    )
    def test_chained_wins_on_both_machines(self, t3d_model, paragon_model, x, y):
        for model in (t3d_model, paragon_model):
            packing = estimate(model, x, y, "buffer-packing")
            chained = estimate(model, x, y, "chained")
            assert chained > packing

    def test_improvement_band_roughly_40_to_60_percent(self, t3d_model):
        """Conclusions: 40-60% higher performance for non-contiguous
        patterns on the T3D (we allow a wider band for the extremes)."""
        ratios = []
        for x, y in [
            (CONTIGUOUS, strided(64)),
            (strided(64), CONTIGUOUS),
            (INDEXED, INDEXED),
        ]:
            packing = estimate(t3d_model, x, y, "buffer-packing")
            chained = estimate(t3d_model, x, y, "chained")
            ratios.append(chained / packing)
        assert all(1.3 <= r <= 2.5 for r in ratios)
