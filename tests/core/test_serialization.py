"""Tests for table serialization (repro.core.serialization)."""

import pytest

from repro.core.calibration import ThroughputTable
from repro.core.errors import CalibrationError
from repro.core.serialization import (
    dump_table,
    load_table,
    table_from_dict,
    table_to_dict,
)
from repro.core.transfers import TransferKind


@pytest.fixture
def table():
    t = ThroughputTable("roundtrip")
    t.set(TransferKind.COPY, "1", "1", 93.0)
    t.set(TransferKind.COPY, "1", 64, 67.9)
    t.set(TransferKind.COPY, "w", "1", 32.9)
    t.set(TransferKind.LOAD_SEND, 16, "0", 38.0)
    t.set(TransferKind.FETCH_SEND, "1", "0", 160.0)
    t.set(TransferKind.RECEIVE_STORE, "0", "w", 42.0)
    t.set(TransferKind.RECEIVE_DEPOSIT, "0", 64, 52.0)
    t.set(TransferKind.NETWORK_DATA, "0", "0", 69.0)
    t.set(TransferKind.NETWORK_ADP, "0", "0", 38.0)
    return t


class TestRoundTrip:
    def test_dict_roundtrip_preserves_entries(self, table):
        rebuilt = table_from_dict(table_to_dict(table))
        assert rebuilt.to_dict() == table.to_dict()
        assert rebuilt.name == "roundtrip"

    def test_file_roundtrip(self, table, tmp_path):
        path = tmp_path / "table.json"
        dump_table(table, str(path))
        rebuilt = load_table(str(path))
        assert rebuilt.to_dict() == table.to_dict()

    def test_published_machine_tables_roundtrip(self, t3d_machine, paragon_machine):
        for machine in (t3d_machine, paragon_machine):
            original = machine.paper_table()
            rebuilt = table_from_dict(table_to_dict(original))
            assert rebuilt.to_dict() == original.to_dict()

    def test_rebuilt_table_answers_lookups(self, table):
        from repro.core.patterns import CONTIGUOUS, strided
        from repro.core.transfers import copy

        rebuilt = table_from_dict(table_to_dict(table))
        assert rebuilt.lookup(copy(CONTIGUOUS, strided(128))) == 67.9


class TestErrors:
    def test_missing_entries_field(self):
        with pytest.raises(CalibrationError):
            table_from_dict({"name": "x"})

    def test_garbage_key_rejected(self):
        with pytest.raises(CalibrationError, match="unparseable"):
            table_from_dict({"entries": {"1Z1": 10.0}})

    def test_bad_rate_rejected(self):
        with pytest.raises(CalibrationError):
            table_from_dict({"entries": {"1C1": -5.0}})
