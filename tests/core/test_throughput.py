"""Tests for the three evaluation rules (repro.core.throughput)."""

import pytest

from repro.core.calibration import ThroughputTable
from repro.core.composition import par, seq
from repro.core.constraints import EntryRef, ResourceConstraint
from repro.core.errors import CompositionError
from repro.core.patterns import CONTIGUOUS, strided
from repro.core.resources import NodeRole
from repro.core.throughput import evaluate
from repro.core.transfers import (
    TransferKind,
    copy,
    load_send,
    network_data,
    receive_deposit,
)


@pytest.fixture
def table():
    t = ThroughputTable("rules")
    t.set(TransferKind.COPY, "1", "1", 100.0)
    t.set(TransferKind.COPY, "1", 64, 50.0)
    t.set(TransferKind.LOAD_SEND, "1", "0", 120.0)
    t.set(TransferKind.RECEIVE_DEPOSIT, "0", "1", 150.0)
    t.set(TransferKind.NETWORK_DATA, "0", "0", 80.0)
    return t


class TestRules:
    def test_lookup_rule(self, table):
        est = evaluate(seq(copy(CONTIGUOUS, CONTIGUOUS)), table)
        assert est.mbps == 100.0
        assert est.root.children[0].rule == "lookup"

    def test_parallel_is_min(self, table):
        op = par(load_send(CONTIGUOUS), network_data(), receive_deposit(CONTIGUOUS))
        est = evaluate(op, table)
        assert est.mbps == 80.0
        assert est.root.rule == "min"
        assert est.root.bottleneck == "Nd"

    def test_sequential_is_harmonic(self, table):
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            copy(CONTIGUOUS, strided(64), role=NodeRole.RECEIVER),
        )
        est = evaluate(op, table)
        assert est.mbps == pytest.approx(1.0 / (1 / 100.0 + 1 / 50.0))
        assert est.root.rule == "harmonic"
        assert est.root.bottleneck == "1C64"

    def test_nested_evaluation(self, table):
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            par(load_send(CONTIGUOUS), network_data(), receive_deposit(CONTIGUOUS)),
            copy(CONTIGUOUS, strided(64), role=NodeRole.RECEIVER),
        )
        est = evaluate(op, table)
        expected = 1.0 / (1 / 100.0 + 1 / 80.0 + 1 / 50.0)
        assert est.mbps == pytest.approx(expected)

    def test_sequential_is_slower_than_slowest_part(self, table):
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            copy(CONTIGUOUS, strided(64), role=NodeRole.RECEIVER),
        )
        est = evaluate(op, table)
        assert est.mbps < 50.0

    def test_parallel_no_slower_than_slowest_part(self, table):
        op = par(load_send(CONTIGUOUS), network_data())
        assert evaluate(op, table).mbps == 80.0


class TestConstraints:
    def test_literal_capacity_binding(self, table):
        constraint = ResourceConstraint("mem", demand=2.0, capacity=100.0)
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, table, constraints=[constraint])
        assert est.mbps == 50.0
        assert est.constrained
        assert est.unconstrained_mbps == 80.0

    def test_slack_constraint_reported_not_applied(self, table):
        constraint = ResourceConstraint("mem", demand=1.0, capacity=500.0)
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, table, constraints=[constraint])
        assert est.mbps == 80.0
        assert not est.constrained
        assert est.constraints[0].limit_mbps == 500.0

    def test_entry_ref_capacity(self, table):
        constraint = ResourceConstraint(
            "duplex memory",
            demand=2.0,
            capacity=EntryRef(TransferKind.COPY, "1", "1"),
        )
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, table, constraints=[constraint])
        assert est.mbps == 50.0  # 100 / 2

    def test_multiple_constraints_take_min(self, table):
        constraints = [
            ResourceConstraint("a", demand=1.0, capacity=70.0),
            ResourceConstraint("b", demand=1.0, capacity=60.0),
        ]
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, table, constraints=constraints)
        assert est.mbps == 60.0


class TestValidation:
    def test_validate_flag(self, table):
        bad = seq(
            copy(CONTIGUOUS, strided(64), role=NodeRole.SENDER),
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.RECEIVER),
        )
        with pytest.raises(CompositionError):
            evaluate(bad, table)
        # Ablation escape hatch: evaluate anyway.
        est = evaluate(bad, table, validate=False)
        assert est.mbps > 0


class TestReporting:
    def test_render_contains_rates_and_bottleneck(self, table):
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            par(load_send(CONTIGUOUS), network_data(), receive_deposit(CONTIGUOUS)),
        )
        text = evaluate(op, table).render()
        assert "MB/s" in text
        assert "bottleneck" in text
        assert "estimate:" in text

    def test_render_marks_binding_constraint(self, table):
        constraint = ResourceConstraint("cap", demand=4.0, capacity=100.0)
        op = par(network_data())
        text = evaluate(op, table, constraints=[constraint]).render()
        assert "BINDING" in text
