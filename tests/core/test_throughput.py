"""Tests for the three evaluation rules (repro.core.throughput)."""

import pytest

from repro.core.calibration import ThroughputTable
from repro.core.composition import par, seq
from repro.core.constraints import EntryRef, ResourceConstraint
from repro.core.errors import CompositionError, ModelError
from repro.core.patterns import CONTIGUOUS, strided
from repro.core.resources import NodeRole
from repro.core.throughput import evaluate
from repro.core.transfers import (
    TransferKind,
    copy,
    load_send,
    network_data,
    receive_deposit,
)


@pytest.fixture
def table():
    t = ThroughputTable("rules")
    t.set(TransferKind.COPY, "1", "1", 100.0)
    t.set(TransferKind.COPY, "1", 64, 50.0)
    t.set(TransferKind.LOAD_SEND, "1", "0", 120.0)
    t.set(TransferKind.RECEIVE_DEPOSIT, "0", "1", 150.0)
    t.set(TransferKind.NETWORK_DATA, "0", "0", 80.0)
    return t


class TestRules:
    def test_lookup_rule(self, table):
        est = evaluate(seq(copy(CONTIGUOUS, CONTIGUOUS)), table)
        assert est.mbps == 100.0
        assert est.root.children[0].rule == "lookup"

    def test_parallel_is_min(self, table):
        op = par(load_send(CONTIGUOUS), network_data(), receive_deposit(CONTIGUOUS))
        est = evaluate(op, table)
        assert est.mbps == 80.0
        assert est.root.rule == "min"
        assert est.root.bottleneck == "Nd"

    def test_sequential_is_harmonic(self, table):
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            copy(CONTIGUOUS, strided(64), role=NodeRole.RECEIVER),
        )
        est = evaluate(op, table)
        assert est.mbps == pytest.approx(1.0 / (1 / 100.0 + 1 / 50.0))
        assert est.root.rule == "harmonic"
        assert est.root.bottleneck == "1C64"

    def test_nested_evaluation(self, table):
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            par(load_send(CONTIGUOUS), network_data(), receive_deposit(CONTIGUOUS)),
            copy(CONTIGUOUS, strided(64), role=NodeRole.RECEIVER),
        )
        est = evaluate(op, table)
        expected = 1.0 / (1 / 100.0 + 1 / 80.0 + 1 / 50.0)
        assert est.mbps == pytest.approx(expected)

    def test_sequential_is_slower_than_slowest_part(self, table):
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            copy(CONTIGUOUS, strided(64), role=NodeRole.RECEIVER),
        )
        est = evaluate(op, table)
        assert est.mbps < 50.0

    def test_parallel_no_slower_than_slowest_part(self, table):
        op = par(load_send(CONTIGUOUS), network_data())
        assert evaluate(op, table).mbps == 80.0


class TestConstraints:
    def test_literal_capacity_binding(self, table):
        constraint = ResourceConstraint("mem", demand=2.0, capacity=100.0)
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, table, constraints=[constraint])
        assert est.mbps == 50.0
        assert est.constrained
        assert est.unconstrained_mbps == 80.0

    def test_slack_constraint_reported_not_applied(self, table):
        constraint = ResourceConstraint("mem", demand=1.0, capacity=500.0)
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, table, constraints=[constraint])
        assert est.mbps == 80.0
        assert not est.constrained
        assert est.constraints[0].limit_mbps == 500.0

    def test_entry_ref_capacity(self, table):
        constraint = ResourceConstraint(
            "duplex memory",
            demand=2.0,
            capacity=EntryRef(TransferKind.COPY, "1", "1"),
        )
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, table, constraints=[constraint])
        assert est.mbps == 50.0  # 100 / 2

    def test_multiple_constraints_take_min(self, table):
        constraints = [
            ResourceConstraint("a", demand=1.0, capacity=70.0),
            ResourceConstraint("b", demand=1.0, capacity=60.0),
        ]
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, table, constraints=constraints)
        assert est.mbps == 60.0


class TestValidation:
    def test_validate_flag(self, table):
        bad = seq(
            copy(CONTIGUOUS, strided(64), role=NodeRole.SENDER),
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.RECEIVER),
        )
        with pytest.raises(CompositionError):
            evaluate(bad, table)
        # Ablation escape hatch: evaluate anyway.
        est = evaluate(bad, table, validate=False)
        assert est.mbps > 0


class TestReporting:
    def test_render_contains_rates_and_bottleneck(self, table):
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            par(load_send(CONTIGUOUS), network_data(), receive_deposit(CONTIGUOUS)),
        )
        text = evaluate(op, table).render()
        assert "MB/s" in text
        assert "bottleneck" in text
        assert "estimate:" in text

    def test_render_marks_binding_constraint(self, table):
        constraint = ResourceConstraint("cap", demand=4.0, capacity=100.0)
        op = par(network_data())
        text = evaluate(op, table, constraints=[constraint]).render()
        assert "BINDING" in text


class _ZeroRateTable(ThroughputTable):
    """A table whose lookups report zero throughput for one kind.

    ``ThroughputTable.set`` refuses nonpositive rates, but a stubbed
    calibration, a corrupted cache entry or a subclass can still put a
    zero in front of the evaluator — which must fail loudly instead of
    dividing by it.
    """

    def __init__(self, zero_kind, base):
        super().__init__("zero-rate stub")
        self.merge(base)
        self._zero_kind = zero_kind

    def lookup_kind(self, kind, read, write):
        if kind == self._zero_kind:
            return 0.0
        return super().lookup_kind(kind, read, write)


class TestZeroRateRegression:
    """Sequential composition over a zero-rate step raises ModelError.

    The harmonic rule divides by each step's rate; a zero used to
    surface as a ZeroDivisionError with no indication of which
    sub-expression was broken.
    """

    def test_zero_seq_leaf_raises_and_names_the_step(self, table):
        zero = _ZeroRateTable(TransferKind.COPY, table)
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            copy(CONTIGUOUS, strided(64), role=NodeRole.RECEIVER),
        )
        with pytest.raises(ModelError, match="zero-throughput step 1C1"):
            evaluate(op, zero)

    def test_zero_inside_par_inside_seq_raises(self, table):
        zero = _ZeroRateTable(TransferKind.LOAD_SEND, table)
        op = seq(
            copy(CONTIGUOUS, CONTIGUOUS, role=NodeRole.SENDER),
            par(load_send(CONTIGUOUS), network_data()),
            copy(CONTIGUOUS, strided(64), role=NodeRole.RECEIVER),
        )
        with pytest.raises(ModelError, match="zero-throughput step"):
            evaluate(op, zero)

    def test_parallel_alone_tolerates_a_zero_branch(self, table):
        zero = _ZeroRateTable(TransferKind.LOAD_SEND, table)
        op = par(load_send(CONTIGUOUS), network_data())
        est = evaluate(op, zero)
        assert est.mbps == 0.0
        assert est.root.bottleneck == "1S0"
