"""Cross-layer wiring: estimate/runtime/CLI all surface linter output."""

import json

import pytest

from repro.__main__ import main
from repro.analysis import analyze, parse_expr
from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, strided
from repro.machines import t3d
from repro.runtime.engine import CommRuntime


@pytest.fixture(scope="module")
def machine():
    return t3d()


@pytest.fixture(scope="module")
def model(machine):
    return machine.model()


class TestModelEstimateAnalyze:
    def test_estimate_expr_carries_identical_diagnostics(self, model):
        expr = parse_expr("64C1 o 2C1")
        direct = analyze(
            expr,
            table=model.table,
            capabilities=model.capabilities,
            constraints=model.constraints,
        )
        estimate = model.estimate_expr(expr, analyze=True)
        assert list(estimate.diagnostics) == direct
        assert any(d.rule == "CT101" for d in estimate.diagnostics)

    def test_analyze_subsumes_validation(self, model):
        # Illegal composition still evaluates when analyzed: the
        # error-severity diagnostic replaces the CompositionError.
        estimate = model.estimate_expr(parse_expr("64C1 o 2C1"), analyze=True)
        assert estimate.mbps > 0

    def test_estimate_default_has_no_diagnostics(self, model):
        estimate = model.estimate(CONTIGUOUS, strided(64), "chained")
        assert estimate.diagnostics == ()

    def test_estimate_analyze_renders_diagnostics(self, model):
        estimate = model.estimate(
            CONTIGUOUS, strided(64), "buffer-packing", analyze=True
        )
        assert any(d.rule == "CT301" for d in estimate.diagnostics)
        assert "CT301" in estimate.render()


class TestRuntimeAnalyze:
    def test_measurement_carries_diagnostics(self, machine):
        runtime = CommRuntime(machine)
        result = runtime.transfer(
            CONTIGUOUS, strided(64), 32768,
            style=OperationStyle.BUFFER_PACKING, analyze=True,
        )
        assert any(d.rule == "CT301" for d in result.diagnostics)

    def test_measurement_default_is_silent(self, machine):
        runtime = CommRuntime(machine)
        result = runtime.transfer(
            CONTIGUOUS, strided(64), 32768, style=OperationStyle.CHAINED
        )
        assert result.diagnostics == ()


class TestLintCli:
    def test_error_exits_nonzero_and_names_rule(self, capsys):
        code = main(["lint", "64C1 o 2C1"])
        out = capsys.readouterr().out
        assert code == 1
        assert "CT101" in out
        # Both patterns and the offending step are named.
        assert "pattern 1" in out and "pattern 2" in out and "2C1" in out

    def test_clean_expression_exits_zero(self, capsys):
        code = main(["lint", "1S0 || Nadp || 0D64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no findings" in out

    def test_advice_does_not_fail_the_lint(self, capsys):
        code = main(["lint", "--machine", "t3d", "--x", "1", "--y", "64",
                     "--style", "buffer-packing"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CT301" in out

    def test_json_mode(self, capsys):
        code = main(["lint", "--json", "64C1 o 2C1"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["counts"]["error"] >= 1
        [result] = payload["results"]
        assert result["notation"] == "64C1 o 2C1"
        rules = {d["rule"] for d in result["diagnostics"]}
        assert "CT101" in rules
        [ct101] = [d for d in result["diagnostics"] if d["rule"] == "CT101"]
        start, end = ct101["span"]
        assert result["notation"][start:end] == "2C1"

    def test_rule_selection(self, capsys):
        code = main(["lint", "--rules", "CT302", "--json", "64C1 o 2C1"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0  # CT101 not selected, so no errors
        assert payload["counts"]["error"] == 0

    def test_unknown_rule_id_fails(self, capsys):
        code = main(["lint", "--rules", "CT999", "1C1"])
        err = capsys.readouterr().err
        assert code == 1
        assert "CT999" in err

    def test_unparseable_notation_fails_cleanly(self, capsys):
        code = main(["lint", "not a composition"])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err

    def test_machine_none_runs_composition_rules_only(self, capsys):
        code = main(["lint", "--machine", "none", "--json",
                     "1C1 o (1S0 || Nd || 0D1) o 1C64"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        rules = {
            d["rule"]
            for result in payload["results"]
            for d in result["diagnostics"]
        }
        assert "CT301" not in rules  # needs a table and capabilities

    def test_machine_none_without_expression_fails(self, capsys):
        code = main(["lint", "--machine", "none"])
        assert code == 1
        assert "notation" in capsys.readouterr().err
