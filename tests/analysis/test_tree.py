"""Tests for tree walking and span computation (repro.analysis.tree)."""

from repro.analysis import parse_expr
from repro.analysis.tree import compute_spans, walk
from repro.core.composition import Term, par, seq
from repro.core.patterns import CONTIGUOUS, strided
from repro.core.transfers import copy, load_send, network_data, receive_deposit


def chain():
    return seq(
        copy(strided(64), CONTIGUOUS),
        par(load_send(CONTIGUOUS), network_data(), receive_deposit(CONTIGUOUS)),
        copy(CONTIGUOUS, CONTIGUOUS),
    )


class TestWalk:
    def test_root_first_depth_first(self):
        paths = [path for path, __ in walk(chain())]
        assert paths == [
            (), (0,), (1,), (1, 0), (1, 1), (1, 2), (2,),
        ]

    def test_leaf_walk(self):
        term = Term(copy(CONTIGUOUS, CONTIGUOUS))
        assert list(walk(term)) == [((), term)]


class TestComputeSpans:
    def test_every_span_slices_to_the_node_notation(self):
        expr = chain()
        notation = expr.notation()
        spans = compute_spans(expr)
        nodes = dict(walk(expr))
        assert set(spans) == set(nodes)
        for path, node in nodes.items():
            span = spans[path]
            expected = node.notation(top=(path == ()))
            assert notation[span.start:span.end] == expected

    def test_nested_parenthesized_expression(self):
        expr = parse_expr("64C1 o (1S0 || Nd || 0D1) o 1C1")
        notation = expr.notation()
        spans = compute_spans(expr)
        assert notation[spans[(0,)].start:spans[(0,)].end] == "64C1"
        assert notation[spans[(1,)].start:spans[(1,)].end] == (
            "(1S0 || Nd || 0D1)"
        )
        assert notation[spans[(1, 1)].start:spans[(1, 1)].end] == "Nd"
        assert notation[spans[(2,)].start:spans[(2,)].end] == "1C1"

    def test_root_span_covers_whole_notation(self):
        expr = chain()
        span = compute_spans(expr)[()]
        assert (span.start, span.end) == (0, len(expr.notation()))
