"""Tests for the notation parser (repro.analysis.parser)."""

import pytest

from repro.analysis import NotationError, parse_expr
from repro.core.composition import Par, Seq, Term
from repro.core.errors import ModelError
from repro.core.resources import NodeRole
from repro.core.transfers import TransferKind


ROUND_TRIPS = [
    "1C1",
    "64C1",
    "64x2C1",
    "wCw",
    "1S0",
    "1F0",
    "0R64",
    "0D1",
    "Nd",
    "Nadp",
    "64C1 o 1C64",
    "1S0 || Nd || 0D1",
    "64C1 o (1S0 || Nd || 0D1) o 1C1",
    "1S0 || Nadp || 0D64",
    "(1S0 || Nd || 0D1) o 1C64",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIPS)
    def test_notation_round_trips(self, text):
        assert parse_expr(text).notation() == text

    def test_whitespace_insensitive(self):
        a = parse_expr("64C1 o (1S0 || Nd || 0D1)")
        b = parse_expr("64C1o(1S0||Nd||0D1)")
        assert a.notation() == b.notation()

    def test_unicode_operators(self):
        assert parse_expr("1S0 ‖ Nd ‖ 0D1").notation() == "1S0 || Nd || 0D1"
        assert parse_expr("64C1 ∘ 1C64").notation() == "64C1 o 1C64"


class TestStructure:
    def test_par_binds_tighter_than_seq(self):
        expr = parse_expr("64C1 o 1S0 || Nd || 0D1")
        assert isinstance(expr, Seq)
        assert isinstance(expr.parts[0], Term)
        assert isinstance(expr.parts[1], Par)
        assert len(expr.parts[1].parts) == 3

    def test_transfer_kinds(self):
        kinds = [t.kind for t in parse_expr(
            "64C1 o (1F0 || Nadp || 0R1) o 1C64"
        ).terms()]
        assert kinds == [
            TransferKind.COPY,
            TransferKind.FETCH_SEND,
            TransferKind.NETWORK_ADP,
            TransferKind.RECEIVE_STORE,
            TransferKind.COPY,
        ]

    def test_copy_roles_assigned_around_network(self):
        expr = parse_expr("64C1 o (1S0 || Nd || 0D1) o 1C64")
        first, *_rest, last = list(expr.terms())
        assert {r.role for r in first.uses} == {NodeRole.SENDER}
        assert {r.role for r in last.uses} == {NodeRole.RECEIVER}

    def test_local_expression_keeps_local_role(self):
        expr = parse_expr("64C1 o 1C64")
        for transfer in expr.terms():
            assert {r.role for r in transfer.uses} == {NodeRole.LOCAL}


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "1X1",          # unknown transfer letter
            "64C1 o",       # dangling operator
            "(1S0 || Nd",   # unclosed paren
            "64C1) o 1C1",  # stray close paren
            "1C1 1C1",      # missing operator
            "hello",
        ],
    )
    def test_malformed_notation_raises(self, text):
        with pytest.raises(NotationError):
            parse_expr(text)

    @pytest.mark.parametrize("text", ["1S1", "1F64", "64R1", "1D1"])
    def test_network_port_sides_must_be_fixed(self, text):
        with pytest.raises(NotationError):
            parse_expr(text)

    def test_notation_error_is_a_model_error(self):
        with pytest.raises(ModelError):
            parse_expr("?")
