"""CT215 fault-class coverage tests."""

from repro.analysis.verify import verify_plan
from repro.analysis.verify.coverage import (
    FAULT_COVERAGE,
    CoverageContext,
    fault_class_names,
    fault_coverage,
)
from repro.analysis.verify.examples import step_plan
from repro.core.operations import CommCapabilities, DepositSupport
from repro.faults.policy import RetryPolicy
from repro.machines import paragon, t3d


def _by_class(entries):
    return {entry.fault_class: entry for entry in entries}


class TestRegistry:
    def test_every_spec_class_has_a_predicate(self):
        assert set(fault_class_names()) == set(FAULT_COVERAGE)

    def test_spec_exports_the_four_paper_classes(self):
        assert set(fault_class_names()) == {
            "LinkFault", "NodeFault", "DepositFault", "FragmentFault",
        }

    def test_unregistered_class_reports_the_gap(self):
        removed = FAULT_COVERAGE.pop("DepositFault")
        try:
            entry = _by_class(fault_coverage(CoverageContext()))[
                "DepositFault"
            ]
            assert not entry.covered
            assert entry.reason == "no registered coverage check"
        finally:
            FAULT_COVERAGE["DepositFault"] = removed


class TestPredicates:
    def test_default_context_covers_everything(self):
        entries = fault_coverage(CoverageContext())
        assert all(entry.covered for entry in entries)

    def test_chained_contiguous_deposit_without_coprocessor_is_gap(self):
        context = CoverageContext(
            capabilities=CommCapabilities(
                deposit=DepositSupport.CONTIGUOUS,
                coprocessor_receive=False,
            ),
            style="chained",
            machine="gimped",
        )
        entry = _by_class(fault_coverage(context))["DepositFault"]
        assert not entry.covered
        assert "no co-processor" in entry.reason

    def test_t3d_any_deposit_is_covered_even_chained(self):
        context = CoverageContext(
            capabilities=t3d().capabilities, style="chained",
        )
        assert _by_class(fault_coverage(context))["DepositFault"].covered

    def test_paragon_chained_falls_back_to_the_coprocessor(self):
        context = CoverageContext(
            capabilities=paragon().capabilities, style="chained",
        )
        assert _by_class(fault_coverage(context))["DepositFault"].covered

    def test_packing_style_never_needs_the_deposit_engine(self):
        context = CoverageContext(
            capabilities=CommCapabilities(
                deposit=DepositSupport.CONTIGUOUS,
                coprocessor_receive=False,
            ),
            style="buffer-packing",
        )
        assert _by_class(fault_coverage(context))["DepositFault"].covered

    def test_single_attempt_retry_policy_is_a_fragment_gap(self):
        context = CoverageContext(
            retry_policy=RetryPolicy(max_attempts=1),
        )
        entry = _by_class(fault_coverage(context))["FragmentFault"]
        assert not entry.covered
        assert "single attempt" in entry.reason

    def test_link_and_node_faults_are_always_survivable(self):
        context = CoverageContext(
            capabilities=CommCapabilities(),
            style="chained",
            retry_policy=RetryPolicy(max_attempts=1),
        )
        entries = _by_class(fault_coverage(context))
        assert entries["LinkFault"].covered
        assert entries["NodeFault"].covered


class TestVerifyIntegration:
    def test_uncovered_class_yields_ct215(self):
        result = verify_plan(
            step_plan("shift", 4),
            model=t3d().model(),
            retry_policy=RetryPolicy(max_attempts=1),
        )
        gaps = [d for d in result.diagnostics if d.rule == "CT215"]
        assert len(gaps) == 1
        assert "FragmentFault" in gaps[0].message
        assert not result.ok

    def test_default_policy_covers_all_classes(self):
        result = verify_plan(step_plan("shift", 4), model=t3d().model())
        assert all(entry.covered for entry in result.coverage)
        assert "CT215" not in [d.rule for d in result.diagnostics]
