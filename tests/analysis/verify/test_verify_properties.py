"""Property-based tests for the verifier's scheduling passes.

Two invariants carry the deadlock analysis:

* a **phased + interleaved** plan can never block — the phase
  partition serializes conflicting endpoints and the interleaved
  discipline posts matching sends/receives in one global order;
* the rendezvous simulation is **confluent** — every action has
  exactly one partner (peer *and* tag), so any maximal matching
  strategy reaches the same blocked set as the sorted-node scan.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.verify import phase_partition, verify_plan
from repro.analysis.verify.examples import EXAMPLES, example_result
from repro.analysis.verify.ir import lower_plan
from repro.analysis.verify.passes import simulate_rendezvous
from repro.compiler.commgen import CommOp, CommPlan
from repro.core.patterns import AccessPattern

# -- strategies ---------------------------------------------------------------

_endpoints = st.integers(min_value=0, max_value=5)

#: Off-node flows only: a self-message is a seeded defect (its own
#: CT212 self-cycle test), not part of the no-deadlock invariant.
flows = st.lists(
    st.tuples(_endpoints, _endpoints).filter(lambda f: f[0] != f[1]),
    min_size=1,
    max_size=12,
)


def _plan(flow_list):
    ops = [
        CommOp(
            src=src,
            dst=dst,
            x=AccessPattern.parse("1"),
            y=AccessPattern.parse("64"),
            nwords=64,
        )
        for src, dst in flow_list
    ]
    return CommPlan(name="prop", ops=ops)


# -- properties ---------------------------------------------------------------


@given(flows)
@settings(max_examples=80, deadline=None)
def test_phased_interleaved_plans_never_block(flow_list):
    ir = lower_plan(
        _plan(flow_list), schedule="phased", discipline="interleaved"
    )
    heads, blocked = simulate_rendezvous(ir)
    assert blocked == []
    result = verify_plan(
        _plan(flow_list), schedule="phased", discipline="interleaved"
    )
    rules = {d.rule for d in result.diagnostics}
    assert "CT212" not in rules and "CT213" not in rules


@given(flows, st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_rendezvous_simulation_is_confluent(flow_list, rng):
    ir = lower_plan(
        _plan(flow_list), schedule="phased", discipline="blocking-sends"
    )
    __, blocked = simulate_rendezvous(ir)

    # Oracle: match head sends to head receives in random order until
    # no pair matches.  Confluence says the blocked set is the same.
    actions = {s.node: list(s.actions) for s in ir.schedules}
    heads = {node: 0 for node in actions}

    def head(node):
        index = heads[node]
        return (
            actions[node][index] if index < len(actions[node]) else None
        )

    while True:
        matchable = []
        for node in actions:
            action = head(node)
            if action is None or action.kind != "send":
                continue
            partner = head(action.peer) if action.peer in actions else None
            if (
                partner is not None
                and partner.kind == "recv"
                and partner.peer == node
                and partner.tag == action.tag
            ):
                matchable.append(node)
        if not matchable:
            break
        node = rng.choice(matchable)
        peer = actions[node][heads[node]].peer
        heads[node] += 1
        heads[peer] += 1

    oracle_blocked = sorted(
        node for node in actions if heads[node] < len(actions[node])
    )
    assert oracle_blocked == blocked


@given(flows)
@settings(max_examples=100, deadline=None)
def test_phase_partition_is_a_partition_of_partial_permutations(flow_list):
    phases = phase_partition(flow_list)
    flat = sorted(index for members in phases for index in members)
    assert flat == list(range(len(flow_list)))
    for members in phases:
        sources = [flow_list[i][0] for i in members]
        destinations = [flow_list[i][1] for i in members]
        assert len(set(sources)) == len(sources)
        assert len(set(destinations)) == len(destinations)


@given(st.sampled_from(["t3d", "paragon"]))
@settings(max_examples=6, deadline=None)
def test_clean_example_is_verifier_silent(machine_key):
    result = example_result(machine_key, "clean")
    assert result.ok
    assert not [
        d for d in result.diagnostics if d.rule.startswith("CT21")
    ]


def test_examples_registry_names_are_stable():
    assert sorted(EXAMPLES) == ["clean", "deadlock", "racy"]
