"""CT214 interval abstract interpretation tests.

The soundness contract under test: the static bracket must contain the
concrete figure — `evaluate()` for expressions, the runtime's measured
wall clock for stage pipelines — for every shape the repo models.
"""

import pytest

from repro.analysis.verify.bounds import (
    Interval,
    phase_bounds,
    pipeline_bounds,
)
from repro.core.errors import CompositionError, ModelError
from repro.core.operations import OperationStyle
from repro.core.patterns import AccessPattern
from repro.core.throughput import evaluate
from repro.machines import paragon, t3d
from repro.runtime.engine import CommRuntime
from repro.sweep import GRID_PAIRS

MACHINES = {"t3d": t3d, "paragon": paragon}
STYLES = [style.value for style in OperationStyle]


class TestInterval:
    def test_degenerate_interval_is_rejected(self):
        with pytest.raises(ModelError):
            Interval(lo=2.0, hi=1.0)

    def test_contains_uses_relative_slack(self):
        interval = Interval(lo=10.0, hi=20.0)
        assert interval.contains(10.0)
        assert interval.contains(20.0 * (1 + 1e-12))
        assert not interval.contains(20.1)
        assert not interval.contains(9.9)


class TestExpressionBounds:
    @pytest.mark.parametrize("machine_key", sorted(MACHINES))
    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("x,y", GRID_PAIRS)
    def test_total_row_brackets_the_evaluator(
        self, machine_key, style, x, y
    ):
        model = MACHINES[machine_key]().model()
        try:
            expr = model.build(
                AccessPattern.parse(x), AccessPattern.parse(y), style
            )
        except CompositionError:
            pytest.skip(f"{x}Q{y} has no {style} form on {machine_key}")
        rows = phase_bounds(expr, model.table, 131072, model.constraints)
        assert rows, f"no bounds for {x}Q{y} {style} on {machine_key}"
        (total,) = [row for row in rows if row.phase == "total"]
        concrete = evaluate(
            expr, model.table, constraints=model.constraints
        ).mbps
        assert Interval(total.mbps_lo, total.mbps_hi).contains(concrete)
        assert total.lo_ns <= total.hi_ns

    def test_per_phase_rows_appear_only_for_seq_roots(self):
        model = t3d().model()
        expr = model.build(
            AccessPattern.parse("1"),
            AccessPattern.parse("64"),
            "buffer-packing",
        )
        rows = phase_bounds(expr, model.table, 131072, model.constraints)
        phases = [row.phase for row in rows]
        assert phases[-1] == "total"
        assert len(phases) > 1  # packing has pack/transfer phases

    def test_unconstrained_upper_end_dominates_lower(self):
        model = t3d().model()
        expr = model.build(
            AccessPattern.parse("1"), AccessPattern.parse("64"), "chained"
        )
        rows = phase_bounds(expr, model.table, 131072, model.constraints)
        for row in rows:
            assert row.mbps_lo <= row.mbps_hi


class TestPipelineBounds:
    @pytest.mark.parametrize("machine_key", sorted(MACHINES))
    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("nbytes", [4096, 131072])
    @pytest.mark.parametrize("x,y", [("1", "64"), ("64", "1"), ("1", "1")])
    def test_bracket_contains_the_measured_transfer(
        self, machine_key, style, nbytes, x, y
    ):
        runtime = CommRuntime(MACHINES[machine_key](), rates="paper")
        pattern_x = AccessPattern.parse(x)
        pattern_y = AccessPattern.parse(y)
        phases = runtime.phases(pattern_x, pattern_y, nbytes, style=style)
        bracket = pipeline_bounds(phases, nbytes)
        measured = runtime.transfer(
            pattern_x, pattern_y, nbytes, style=style
        ).ns
        assert bracket.lo <= measured <= bracket.hi

    def test_empty_pipeline_bounds_are_zero(self):
        bracket = pipeline_bounds([], 4096)
        assert bracket.lo == 0.0 and bracket.hi == 0.0
