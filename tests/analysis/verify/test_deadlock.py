"""CT212/CT213 rendezvous pass tests."""

from repro.analysis.verify import verify_plan
from repro.analysis.verify.examples import step_plan
from repro.analysis.verify.ir import (
    CommAction,
    NodeSchedule,
    PlanIR,
    lower_plan,
)
from repro.analysis.verify.passes import (
    VerifyContext,
    run_verify,
    simulate_rendezvous,
)
from repro.compiler.commgen import CommOp, CommPlan
from repro.core.patterns import AccessPattern
from repro.machines import t3d


def _rules(diagnostics):
    return [d.rule for d in diagnostics]


class TestDeadlockCycle:
    def test_blocking_sends_shift_deadlocks_the_whole_ring(self):
        model = t3d().model()
        result = verify_plan(
            step_plan("shift", 8), model=model,
            discipline="blocking-sends",
        )
        cycles = [d for d in result.diagnostics if d.rule == "CT212"]
        assert len(cycles) == 1
        # The full eight-node ring appears in the message.
        for node in range(8):
            assert f"node {node}" in cycles[0].message
        assert "rendezvous deadlock" in cycles[0].message
        assert not result.ok

    def test_interleaved_shift_does_not_deadlock(self):
        model = t3d().model()
        result = verify_plan(
            step_plan("shift", 8), model=model,
            discipline="interleaved",
        )
        assert "CT212" not in _rules(result.diagnostics)
        assert "CT213" not in _rules(result.diagnostics)

    def test_self_message_is_a_self_cycle(self):
        plan = CommPlan(
            name="selfie",
            ops=[
                CommOp(
                    src=0, dst=0,
                    x=AccessPattern.parse("1"),
                    y=AccessPattern.parse("64"),
                    nwords=64,
                ),
            ],
        )
        ir = lower_plan(plan, discipline="blocking-sends")
        diagnostics = run_verify(VerifyContext(ir=ir))
        assert _rules(diagnostics).count("CT212") == 1
        (cycle,) = [d for d in diagnostics if d.rule == "CT212"]
        assert "node 0 -> node 0" in cycle.message


class TestUnmatchedRendezvous:
    def test_send_with_a_finished_peer_is_ct213(self):
        ir = PlanIR(
            name="lost-message",
            schedules=(
                NodeSchedule(0, (CommAction("send", 1, 0),)),
                NodeSchedule(1, ()),
            ),
        )
        diagnostics = run_verify(VerifyContext(ir=ir))
        assert _rules(diagnostics) == ["CT213"]
        assert "no matching receive" in diagnostics[0].message

    def test_receive_nobody_sends_is_ct213(self):
        ir = PlanIR(
            name="ghost-receive",
            schedules=(
                NodeSchedule(0, (CommAction("recv", 1, 3),)),
                NodeSchedule(1, ()),
            ),
        )
        diagnostics = run_verify(VerifyContext(ir=ir))
        assert _rules(diagnostics) == ["CT213"]
        assert "no matching send" in diagnostics[0].message


class TestSimulation:
    def test_matched_pair_drains_completely(self):
        ir = PlanIR(
            name="pair",
            schedules=(
                NodeSchedule(0, (CommAction("send", 1, 0),)),
                NodeSchedule(1, (CommAction("recv", 0, 0),)),
            ),
        )
        heads, blocked = simulate_rendezvous(ir)
        assert blocked == []
        assert heads == {0: 1, 1: 1}

    def test_tag_mismatch_blocks_both_sides(self):
        ir = PlanIR(
            name="tag-skew",
            schedules=(
                NodeSchedule(0, (CommAction("send", 1, 0),)),
                NodeSchedule(1, (CommAction("recv", 0, 7),)),
            ),
        )
        heads, blocked = simulate_rendezvous(ir)
        assert blocked == [0, 1]
        assert heads == {0: 0, 1: 0}

    def test_run_verify_only_filter_ignores_unknown_ids(self):
        ir = PlanIR(
            name="filtered",
            schedules=(
                NodeSchedule(0, (CommAction("send", 1, 0),)),
                NodeSchedule(1, ()),
            ),
        )
        assert run_verify(VerifyContext(ir=ir), only=["CT212"]) == ()
        assert run_verify(VerifyContext(ir=ir), only=["CT999"]) == ()
        assert _rules(
            run_verify(VerifyContext(ir=ir), only=["CT213", "CT999"])
        ) == ["CT213"]
