"""CT211 resource-race pass tests."""

from repro.analysis import parse_expr
from repro.analysis.verify import verify_expr, verify_plan
from repro.analysis.verify.examples import step_plan
from repro.machines import t3d


def _rules(result):
    return [d.rule for d in result.diagnostics]


class TestExpressionRaces:
    def test_duplicated_send_claims_one_cpu(self):
        result = verify_expr(parse_expr("1S0 || 1S0"))
        races = [d for d in result.diagnostics if d.rule == "CT211"]
        assert len(races) == 1
        assert "'sender:cpu'" in races[0].message
        assert "2 concurrent units" in races[0].message
        assert not result.ok

    def test_race_diagnostic_carries_source_span(self):
        result = verify_expr(parse_expr("1S0 || 1S0"))
        (race,) = [d for d in result.diagnostics if d.rule == "CT211"]
        assert race.span is not None
        assert (race.span.start, race.span.end) in {(0, 3), (7, 10)}

    def test_disjoint_roles_do_not_race(self):
        result = verify_expr(parse_expr("1S0 || Nd || 0D1"))
        assert "CT211" not in _rules(result)

    def test_sequenced_claims_do_not_race(self):
        result = verify_expr(parse_expr("64C1 o 1C64"))
        assert "CT211" not in _rules(result)


class TestPlanRaces:
    def test_eager_fan_in_races_on_the_root(self):
        model = t3d().model()
        result = verify_plan(
            step_plan("fan-in", 8), model=model, schedule="eager",
        )
        races = sorted(
            d.message for d in result.diagnostics if d.rule == "CT211"
        )
        assert len(races) == 2
        assert "'node0:cpu[recv]'" in races[0]
        assert "'node0:deposit'" in races[1]
        assert all("7 concurrent units" in message for message in races)
        assert not result.ok

    def test_phased_fan_in_is_clean(self):
        model = t3d().model()
        result = verify_plan(
            step_plan("fan-in", 8), model=model, schedule="phased",
        )
        assert "CT211" not in _rules(result)

    def test_clean_shift_is_ok(self):
        model = t3d().model()
        result = verify_plan(step_plan("shift", 8), model=model)
        assert "CT211" not in _rules(result)
        assert result.ok
