"""Lowering tests: expressions, plans and pipelines -> plan IR."""

import pytest

from repro.analysis import parse_expr
from repro.analysis.verify import (
    IREdge,
    lower_expr,
    lower_pipeline,
    lower_plan,
    phase_partition,
)
from repro.analysis.verify.examples import step_plan
from repro.core.errors import ModelError
from repro.core.patterns import AccessPattern
from repro.machines import t3d
from repro.runtime.engine import CommRuntime


class TestLowerExpr:
    def test_terms_become_op_nodes_with_claims_and_spans(self):
        ir = lower_expr(parse_expr("1S0 || 0D64"), name="pair")
        assert [node.kind for node in ir.nodes] == ["op", "op"]
        send, deposit = ir.nodes
        assert "sender:cpu" in send.exclusive
        assert send.span is not None and send.span.start == 0
        assert deposit.span is not None and deposit.span.start > send.span.end
        # Par children stay mutually unordered.
        assert ir.edges == ()

    def test_seq_chains_exits_to_entries(self):
        ir = lower_expr(parse_expr("64C1 o 1C64"))
        assert ir.edges == (IREdge(src="e0", dst="e1", kind="order"),)
        reach = ir.reachability()
        assert "e1" in reach["e0"]
        assert "e0" not in reach["e1"]

    def test_seq_of_pars_adds_all_pairs_edges(self):
        ir = lower_expr(parse_expr("(1S0 || Nd) o (Nd || 0D1)"))
        heads = {e.src for e in ir.edges}
        tails = {e.dst for e in ir.edges}
        assert heads == {"e0", "e1"} and tails == {"e2", "e3"}
        assert len(ir.edges) == 4

    def test_notation_and_machine_carried(self):
        expr = parse_expr("64C1")
        ir = lower_expr(expr, machine="Cray T3D", name="one")
        assert ir.name == "one"
        assert ir.machine == "Cray T3D"
        assert ir.notation == expr.notation()


class TestPhasePartition:
    def test_permutation_fits_one_phase(self):
        assert phase_partition([(0, 1), (1, 2), (2, 0)]) == [[0, 1, 2]]

    def test_fan_in_serializes_on_the_root(self):
        phases = phase_partition([(1, 0), (2, 0), (3, 0)])
        assert phases == [[0], [1], [2]]

    def test_every_index_appears_exactly_once(self):
        flows = [(0, 1), (0, 2), (1, 0), (2, 1), (1, 2)]
        phases = phase_partition(flows)
        flat = sorted(index for phase in phases for index in phase)
        assert flat == list(range(len(flows)))

    def test_phases_are_partial_permutations(self):
        flows = [(0, 1), (0, 2), (1, 0), (2, 1), (1, 2), (2, 0)]
        for members in phase_partition(flows):
            sources = [flows[i][0] for i in members]
            destinations = [flows[i][1] for i in members]
            assert len(set(sources)) == len(sources)
            assert len(set(destinations)) == len(destinations)


class TestLowerPlan:
    def test_role_scoped_cpu_claims_allow_duplex(self):
        # A cyclic shift: every node sends and receives in the same
        # phase.  That is legal duplex traffic, so the send and recv
        # sides of one node's processor must be distinct claims.
        plan = step_plan("shift", 4)
        ir = lower_plan(plan, capabilities=t3d().capabilities,
                        style="buffer-packing")
        op0 = ir.node_by_id("op0")
        assert "node0:cpu[send]" in op0.exclusive
        assert "node1:cpu[recv]" in op0.exclusive
        assert not any(
            claim.endswith(":cpu") for claim in op0.exclusive
        )
        assert ir.concurrent_claims() == []

    def test_phased_schedule_inserts_barriers(self):
        plan = step_plan("fan-in", 4)
        ir = lower_plan(plan, schedule="phased")
        barriers = [n for n in ir.nodes if n.kind == "phase"]
        # 3 flows into one root -> 3 phases -> 2 barriers.
        assert len(barriers) == 2
        assert all(not b.exclusive and not b.shared for b in barriers)
        reach = ir.reachability()
        assert "op2" in reach["op0"]

    def test_eager_schedule_has_no_ordering(self):
        plan = step_plan("fan-in", 4)
        ir = lower_plan(plan, schedule="eager")
        assert ir.edges == ()

    def test_network_and_memory_are_shared(self):
        plan = step_plan("shift", 3)
        ir = lower_plan(plan, capabilities=t3d().capabilities,
                        style="chained")
        op0 = ir.node_by_id("op0")
        assert "network" in op0.shared
        assert "node0:memory" in op0.shared

    def test_unknown_schedule_and_discipline_raise(self):
        plan = step_plan("shift", 3)
        with pytest.raises(ValueError):
            lower_plan(plan, schedule="bogus")
        with pytest.raises(ValueError):
            lower_plan(plan, discipline="bogus")

    def test_step_plan_rejects_unknown_step_and_tiny_partitions(self):
        with pytest.raises(ModelError):
            step_plan("scatter-gather", 8)
        with pytest.raises(ModelError):
            step_plan("shift", 1)


class TestLowerPipeline:
    def test_stages_chain_linearly(self):
        runtime = CommRuntime(t3d(), rates="paper")
        phases = runtime.phases(
            AccessPattern.parse("1"), AccessPattern.parse("64"),
            131072, style="chained",
        )
        ir = lower_pipeline(phases, machine="Cray T3D")
        assert [n.kind for n in ir.nodes] == ["stage"] * len(ir.nodes)
        assert len(ir.edges) == len(ir.nodes) - 1
        reach = ir.reachability()
        first = ir.nodes[0].node_id
        assert len(reach[first]) == len(ir.nodes) - 1
        # A linear chain can never race.
        assert ir.concurrent_claims() == []

    def test_network_stage_is_shared_engines_exclusive(self):
        runtime = CommRuntime(t3d(), rates="paper")
        phases = runtime.phases(
            AccessPattern.parse("1"), AccessPattern.parse("64"),
            131072, style="chained",
        )
        ir = lower_pipeline(phases)
        by_resource = {
            (tuple(n.exclusive), tuple(n.shared)) for n in ir.nodes
        }
        assert ((), ("network",)) in by_resource
        assert any(
            exclusive and not shared
            for exclusive, shared in by_resource
        )
