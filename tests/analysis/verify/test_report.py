"""Schema validator tests for the verify and lint report payloads."""

import copy

import pytest

from repro.analysis import validate_lint_report, validate_verify_report
from repro.analysis.verify.examples import example_payload
from repro.analysis.verify.report import SCHEMA


@pytest.fixture()
def racy_payload():
    return example_payload("t3d", "racy")


class TestVerifyReportAccepts:
    @pytest.mark.parametrize("example", ["clean", "racy", "deadlock"])
    @pytest.mark.parametrize("machine", ["t3d", "paragon"])
    def test_example_payloads_validate(self, machine, example):
        payload = example_payload(machine, example)
        assert validate_verify_report(payload) == []
        assert payload["schema"] == SCHEMA
        assert payload["ok"] is (example == "clean")

    def test_counts_tally_the_diagnostics(self, racy_payload):
        total = sum(racy_payload["counts"].values())
        listed = sum(
            len(result["diagnostics"])
            for result in racy_payload["results"]
        )
        assert total == listed
        assert racy_payload["counts"].get("CT211") == 2


class TestVerifyReportRejects:
    def _errors(self, mutate, payload):
        tampered = copy.deepcopy(payload)
        mutate(tampered)
        return validate_verify_report(tampered)

    def test_not_a_dict(self):
        assert validate_verify_report([]) != []

    def test_wrong_schema_id(self, racy_payload):
        errors = self._errors(
            lambda p: p.update(schema="repro-verify-report/999"),
            racy_payload,
        )
        assert errors and any("schema" in e for e in errors)

    def test_non_bool_ok(self, racy_payload):
        assert self._errors(
            lambda p: p.update(ok="false"), racy_payload
        )

    def test_ok_must_match_the_results(self, racy_payload):
        assert self._errors(
            lambda p: p.update(ok=True), racy_payload
        )

    def test_malformed_counts(self, racy_payload):
        assert self._errors(
            lambda p: p.update(counts={"CT211": "two"}), racy_payload
        )

    def test_missing_result_key(self, racy_payload):
        assert self._errors(
            lambda p: p["results"][0].pop("estimate_mbps"), racy_payload
        )

    def test_unexpected_result_key(self, racy_payload):
        assert self._errors(
            lambda p: p["results"][0].update(extra=1), racy_payload
        )

    def test_inverted_bounds(self, racy_payload):
        def invert(payload):
            row = payload["results"][0]["bounds"][0]
            row["mbps_lo"], row["mbps_hi"] = (
                row["mbps_hi"] + 1.0,
                row["mbps_lo"],
            )

        assert self._errors(invert, racy_payload)

    def test_uncovered_class_needs_a_reason(self, racy_payload):
        def drop_reason(payload):
            coverage = payload["results"][0]["coverage"]
            name = sorted(coverage)[0]
            coverage[name] = {"covered": False, "reason": None}

        assert self._errors(drop_reason, racy_payload)


class TestLintReport:
    def _payload(self):
        from repro.analysis import analyze, has_errors, parse_expr

        expr = parse_expr("64C1 o 2C1")
        diagnostics = analyze(expr)
        return {
            "schema": "repro-lint-report/1",
            "results": [
                {
                    "notation": expr.notation(),
                    "diagnostics": [d.to_dict() for d in diagnostics],
                }
            ],
            "counts": {
                severity: sum(
                    1
                    for d in diagnostics
                    if d.severity.value == severity
                )
                for severity in ("error", "warning", "advice")
            },
            "ok": not has_errors(diagnostics),
        }

    def test_lint_payload_validates(self):
        payload = self._payload()
        assert validate_lint_report(payload) == []
        assert payload["schema"] == "repro-lint-report/1"
        assert payload["ok"] is False  # CT101 is an error

    def test_lint_counts_cross_check(self):
        payload = self._payload()
        tampered = copy.deepcopy(payload)
        tampered["counts"]["error"] += 1
        assert validate_lint_report(tampered)

    def test_lint_rejects_foreign_schema(self):
        payload = self._payload()
        payload["schema"] = "repro-verify-report/1"
        assert validate_lint_report(payload)
