"""Tests for the diagnostic data model (repro.analysis.diagnostics)."""

import pytest

from repro.analysis import (
    Diagnostic,
    Severity,
    Span,
    has_errors,
    max_severity,
    render_report,
)


def diag(rule="CT101", severity=Severity.ERROR, **kwargs):
    return Diagnostic(rule=rule, severity=severity, message="msg", **kwargs)


class TestSeverity:
    def test_ordering(self):
        assert Severity.ADVICE < Severity.WARNING < Severity.ERROR

    def test_rank(self):
        assert [s.rank for s in (Severity.ADVICE, Severity.WARNING,
                                 Severity.ERROR)] == [0, 1, 2]


class TestSpan:
    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Span(-1, 3)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Span(5, 2)

    def test_underline_points_at_range(self):
        text = "64C1 o 2C1"
        span = Span(7, 10)
        underline = span.underline(text)
        assert underline == "       ^^^"
        assert text[span.start:span.end] == "2C1"

    def test_underline_never_empty(self):
        assert Span(3, 3).underline("abcdef") == "   ^"


class TestDiagnostic:
    def test_render_includes_rule_severity_message(self):
        text = diag().render()
        assert text.startswith("CT101 error: msg")

    def test_render_with_span_and_hint(self):
        text = diag(
            notation="64C1 o 2C1", span=Span(7, 10), hint="fix it"
        ).render()
        lines = text.splitlines()
        assert lines[1].strip() == "64C1 o 2C1"
        assert lines[2].strip() == "^^^"
        assert lines[3].strip() == "hint: fix it"

    def test_to_dict_minimal(self):
        assert diag().to_dict() == {
            "rule": "CT101",
            "severity": "error",
            "message": "msg",
        }

    def test_to_dict_full(self):
        payload = diag(
            notation="64C1", span=Span(0, 4), hint="h"
        ).to_dict()
        assert payload["span"] == [0, 4]
        assert payload["notation"] == "64C1"
        assert payload["hint"] == "h"


class TestAggregates:
    def test_has_errors(self):
        assert has_errors([diag(severity=Severity.ERROR)])
        assert not has_errors([diag(severity=Severity.WARNING),
                               diag(severity=Severity.ADVICE)])
        assert not has_errors([])

    def test_max_severity(self):
        assert max_severity([]) is None
        assert max_severity([diag(severity=Severity.ADVICE)]) is Severity.ADVICE
        assert max_severity(
            [diag(severity=Severity.ADVICE), diag(severity=Severity.ERROR)]
        ) is Severity.ERROR

    def test_render_report_empty(self):
        assert render_report([]) == "no findings"

    def test_render_report_counts_and_order(self):
        report = render_report(
            [
                diag(rule="CT301", severity=Severity.ADVICE),
                diag(rule="CT101", severity=Severity.ERROR),
                diag(rule="CT201", severity=Severity.WARNING),
            ]
        )
        lines = report.splitlines()
        assert lines[0].startswith("CT101 error")
        assert lines[-1] == "1 error, 1 warning, 1 advice"

    def test_render_report_pluralizes_but_not_advice(self):
        report = render_report(
            [
                diag(rule="CT101", severity=Severity.ERROR),
                diag(rule="CT102", severity=Severity.ERROR),
                diag(rule="CT301", severity=Severity.ADVICE),
                diag(rule="CT302", severity=Severity.ADVICE),
            ]
        )
        assert report.splitlines()[-1] == "2 errors, 2 advice"
