"""Positive and negative tests for every built-in lint rule."""

import pytest

from repro.analysis import RULES, Severity, analyze, analyze_plan, parse_expr
from repro.compiler.commgen import CommOp, CommPlan
from repro.core.calibration import ThroughputTable
from repro.core.composition import Par, Seq, Term, par, seq
from repro.core.constraints import duplex_memory_constraint
from repro.core.model import CopyTransferModel
from repro.core.operations import CommCapabilities, OperationStyle
from repro.core.patterns import CONTIGUOUS, INDEXED, strided
from repro.core.transfers import (
    TransferKind,
    copy,
    fetch_send,
    load_send,
    network_adp,
    network_data,
    receive_deposit,
    receive_store,
)
from repro.machines import t3d


def rules_fired(diagnostics):
    return {d.rule for d in diagnostics}


@pytest.fixture(scope="module")
def model():
    return t3d().model()


class TestRegistry:
    def test_expected_rule_set(self):
        assert set(RULES) == {
            "CT101", "CT102", "CT103",
            "CT201", "CT202", "CT203", "CT204",
            "CT211", "CT212", "CT213", "CT214", "CT215",
            "CT301", "CT302",
            "CT401", "CT402", "CT403",
        }

    def test_severity_bands(self):
        for rule_id, rule in RULES.items():
            if rule.scope == "expr":
                expected = {
                    "1": Severity.ERROR,
                    "2": Severity.WARNING,
                    "3": Severity.ADVICE,
                }[rule_id[2]]
                assert rule.severity is expected

    def test_only_ct1xx_expression_rules_are_errors(self):
        for rule_id, rule in RULES.items():
            if rule.scope == "expr" and rule.severity is Severity.ERROR:
                assert rule_id.startswith("CT1")


class TestCT101SeqMismatch:
    def test_fires_on_pattern_mismatch(self):
        diagnostics = analyze(parse_expr("64C1 o 2C1"))
        hits = [d for d in diagnostics if d.rule == "CT101"]
        assert len(hits) == 1
        d = hits[0]
        assert d.severity is Severity.ERROR
        # Names both steps and both patterns.
        assert "64C1" in d.message and "2C1" in d.message
        assert "pattern 1" in d.message and "pattern 2" in d.message
        # The span anchors on the offending right-hand step.
        assert d.notation[d.span.start:d.span.end] == "2C1"
        assert d.hint is not None

    def test_silent_on_matching_chain(self):
        diagnostics = analyze(parse_expr("64C1 o 1C64"))
        assert "CT101" not in rules_fired(diagnostics)

    def test_fixed_ports_exempt(self):
        # 1S0 writes the fixed NI port; no mismatch with the 0D1 read.
        diagnostics = analyze(parse_expr("1S0 || Nd || 0D1"))
        assert "CT101" not in rules_fired(diagnostics)

    def test_nested_seq_reported_with_inner_span(self):
        expr = seq(
            copy(CONTIGUOUS, CONTIGUOUS),
            seq(copy(strided(64), CONTIGUOUS), copy(strided(2), CONTIGUOUS)),
        )
        hits = [d for d in analyze(expr) if d.rule == "CT101"]
        # Outer boundary 1C1 -> 64C1 mismatches too, inner 1 -> 2 as well.
        assert len(hits) == 2


class TestCT102ParExclusiveConflict:
    def test_fires_when_two_branches_need_the_cpu(self):
        expr = par(load_send(CONTIGUOUS), load_send(CONTIGUOUS))
        hits = [d for d in analyze(expr) if d.rule == "CT102"]
        assert len(hits) == 1
        assert "cpu" in hits[0].message.lower()

    def test_silent_on_disjoint_engines(self):
        diagnostics = analyze(parse_expr("1S0 || Nadp || 0D64"))
        assert "CT102" not in rules_fired(diagnostics)

    def test_reports_each_conflicting_pair_once(self):
        expr = par(load_send(CONTIGUOUS), load_send(CONTIGUOUS),
                   load_send(CONTIGUOUS))
        hits = [d for d in analyze(expr) if d.rule == "CT102"]
        assert len(hits) == 2  # branch 1-2 and 1-3 (dedup keeps first owner)


class TestCT103EmptyComposition:
    def test_fires_on_directly_built_empty_nodes(self):
        for node, kind in ((Seq(()), "sequential"), (Par(()), "parallel")):
            hits = [d for d in analyze(node) if d.rule == "CT103"]
            assert len(hits) == 1
            assert kind in hits[0].message

    def test_silent_on_populated_nodes(self):
        diagnostics = analyze(parse_expr("64C1 o 1C64"))
        assert "CT103" not in rules_fired(diagnostics)


class TestCT201UncoveredSharedCapacity:
    def test_fires_per_shared_capacity_resource(self):
        expr = par(load_send(CONTIGUOUS), fetch_send(CONTIGUOUS))
        hits = [d for d in analyze(expr) if d.rule == "CT201"]
        # CPU vs DMA is legal, but memory, bus and NI port are shared.
        assert len(hits) == 3
        text = " ".join(d.message for d in hits)
        assert "memory" in text and "bus" in text and "ni_port" in text

    def test_constraint_covers_its_resource(self):
        expr = par(load_send(CONTIGUOUS), fetch_send(CONTIGUOUS))
        diagnostics = analyze(
            expr, constraints=(duplex_memory_constraint(),)
        )
        hits = [d for d in diagnostics if d.rule == "CT201"]
        assert len(hits) == 2
        assert all("memory" not in d.message for d in hits)

    def test_silent_without_sharing(self):
        diagnostics = analyze(parse_expr("1S0 || Nadp || 0D64"))
        assert "CT201" not in rules_fired(diagnostics)


class TestCT202MissingCalibration:
    def test_fires_on_table_gap(self):
        table = ThroughputTable("gappy")
        table.set(TransferKind.COPY, "1", "1", 90.0)
        expr = Term(load_send(CONTIGUOUS))
        hits = [d for d in analyze(expr, table=table) if d.rule == "CT202"]
        assert len(hits) == 1
        assert "1S0" in hits[0].message
        assert "gappy" in hits[0].hint

    def test_silent_without_a_table(self):
        diagnostics = analyze(Term(load_send(CONTIGUOUS)))
        assert "CT202" not in rules_fired(diagnostics)

    def test_silent_on_covered_expression(self, model):
        expr = model.build(CONTIGUOUS, strided(64), OperationStyle.CHAINED)
        diagnostics = analyze(expr, table=model.table)
        assert "CT202" not in rules_fired(diagnostics)

    def test_duplicate_gaps_reported_once(self):
        table = ThroughputTable("empty")
        expr = seq(copy(CONTIGUOUS, CONTIGUOUS), copy(CONTIGUOUS, CONTIGUOUS))
        hits = [d for d in analyze(expr, table=table) if d.rule == "CT202"]
        assert len(hits) == 1


class TestCT203WrongNetworkFraming:
    def test_fires_on_nd_with_scattered_deposit(self):
        expr = par(
            load_send(CONTIGUOUS), network_data(), receive_deposit(strided(64))
        )
        hits = [d for d in analyze(expr) if d.rule == "CT203"]
        assert len(hits) == 1
        assert "Nd" in hits[0].message
        assert "Nadp" in hits[0].hint

    def test_fires_on_nd_with_strided_send(self):
        expr = par(
            load_send(strided(64)), network_data(), receive_store(CONTIGUOUS)
        )
        assert "CT203" in rules_fired(analyze(expr))

    def test_silent_with_adp_framing(self):
        diagnostics = analyze(parse_expr("1S0 || Nadp || 0D64"))
        assert "CT203" not in rules_fired(diagnostics)

    def test_silent_when_both_ends_contiguous(self):
        diagnostics = analyze(parse_expr("1S0 || Nd || 0D1"))
        assert "CT203" not in rules_fired(diagnostics)


class TestCT204UnchargedIndexRead:
    @staticmethod
    def table(indexed_rate):
        table = ThroughputTable("idx")
        table.set(TransferKind.COPY, "1", "1", 50.0)
        table.set(TransferKind.COPY, "w", "1", indexed_rate)
        return table

    def test_fires_when_indexed_not_slower(self):
        expr = Term(copy(INDEXED, CONTIGUOUS))
        hits = [
            d for d in analyze(expr, table=self.table(50.0))
            if d.rule == "CT204"
        ]
        assert len(hits) == 1
        assert "wC1" in hits[0].message and "1C1" in hits[0].message

    def test_silent_when_index_read_charged(self):
        expr = Term(copy(INDEXED, CONTIGUOUS))
        diagnostics = analyze(expr, table=self.table(24.0))
        assert "CT204" not in rules_fired(diagnostics)

    def test_silent_on_calibration_gap(self):
        # The missing-entry case belongs to CT202.
        expr = Term(copy(INDEXED, CONTIGUOUS))
        diagnostics = analyze(expr, table=ThroughputTable("empty"))
        fired = rules_fired(diagnostics)
        assert "CT204" not in fired and "CT202" in fired


class TestCT301PackingBeatenByChained:
    def test_fires_on_t3d_1q64_packing(self, model):
        expr = model.build(CONTIGUOUS, strided(64), OperationStyle.BUFFER_PACKING)
        hits = [
            d
            for d in analyze(
                expr, table=model.table, capabilities=model.capabilities
            )
            if d.rule == "CT301"
        ]
        assert len(hits) == 1
        # The paper's headline numbers: 25 vs 38 MB/s (Section 5.1.2).
        assert "25.0" in hits[0].message and "38.0" in hits[0].message

    def test_silent_on_the_chained_form(self, model):
        expr = model.build(CONTIGUOUS, strided(64), OperationStyle.CHAINED)
        diagnostics = analyze(
            expr, table=model.table, capabilities=model.capabilities
        )
        assert "CT301" not in rules_fired(diagnostics)

    def test_silent_without_machine_context(self, model):
        expr = model.build(CONTIGUOUS, strided(64), OperationStyle.BUFFER_PACKING)
        assert "CT301" not in rules_fired(analyze(expr))


class TestCT302RedundantCopy:
    def test_fires_on_matching_patterns(self):
        hits = [
            d for d in analyze(parse_expr("1C1")) if d.rule == "CT302"
        ]
        assert len(hits) == 1
        assert "reorganizes nothing" in hits[0].message

    def test_silent_on_reorganizing_copy(self):
        diagnostics = analyze(parse_expr("64C1"))
        assert "CT302" not in rules_fired(diagnostics)


def plan(*ops, name="test-plan"):
    return CommPlan(ops=list(ops), name=name)


def op(src=0, dst=1, x=CONTIGUOUS, y=CONTIGUOUS, nwords=128):
    return CommOp(src=src, dst=dst, x=x, y=y, nwords=nwords)


class TestCT401ZeroByteOp:
    def test_fires_on_zero_words(self):
        hits = [
            d for d in analyze_plan(plan(op(nwords=0))) if d.rule == "CT401"
        ]
        assert len(hits) == 1
        assert "0 words" in hits[0].message

    def test_silent_on_payload(self):
        assert "CT401" not in rules_fired(analyze_plan(plan(op())))


class TestCT402SelfMessage:
    def test_fires_on_src_equals_dst(self):
        hits = [
            d for d in analyze_plan(plan(op(src=3, dst=3)))
            if d.rule == "CT402"
        ]
        assert len(hits) == 1
        assert "itself" in hits[0].message
        assert "1C1" in hits[0].hint

    def test_silent_on_real_messages(self):
        assert "CT402" not in rules_fired(analyze_plan(plan(op())))


class TestCT403InfeasibleStyle:
    @staticmethod
    def bare_model():
        # No deposit engine, no co-processor: chaining is impossible.
        return CopyTransferModel(
            table=ThroughputTable("bare"),
            capabilities=CommCapabilities(),
            name="bare",
        )

    def test_fires_when_requested_style_cannot_build(self):
        diagnostics = analyze_plan(
            plan(op(y=strided(64))), model=self.bare_model(), style="chained"
        )
        hits = [d for d in diagnostics if d.rule == "CT403"]
        assert len(hits) == 1
        assert hits[0].severity is Severity.ERROR
        assert "1Q64" in hits[0].message

    def test_message_names_the_machine_and_missing_capability(self):
        # Regression: plan diagnostics must say *which* engine cannot
        # implement the shape, not just that something cannot.
        model = CopyTransferModel(
            table=ThroughputTable("gimped"),
            capabilities=CommCapabilities(),
            name="gimped",
        )
        diagnostics = analyze_plan(
            plan(op(y=strided(64))), model=model, style="chained"
        )
        (hit,) = [d for d in diagnostics if d.rule == "CT403"]
        assert "on machine 'gimped'" in hit.message
        assert "deposit support is 'none'" in hit.hint
        assert "no co-processor receiver" in hit.hint

    def test_silent_when_any_style_works(self):
        diagnostics = analyze_plan(
            plan(op(y=strided(64))), model=self.bare_model()
        )
        assert "CT403" not in rules_fired(diagnostics)

    def test_silent_without_model(self):
        diagnostics = analyze_plan(plan(op(y=strided(64))), style="chained")
        assert "CT403" not in rules_fired(diagnostics)


class TestPlanExpressionInheritance:
    def test_plan_inherits_expression_findings(self, model):
        # The packing form of 1Q64 carries CT301/CT302 advice; linting
        # the plan with a model surfaces them for its dominant shape.
        diagnostics = analyze_plan(
            plan(op(y=strided(64))), model=model, style="buffer-packing"
        )
        fired = rules_fired(diagnostics)
        assert "CT301" in fired and "CT302" in fired

    def test_duplicate_shapes_linted_once(self, model):
        diagnostics = analyze_plan(
            plan(op(dst=1, y=strided(64)), op(dst=2, y=strided(64))),
            model=model,
            style="buffer-packing",
        )
        assert len([d for d in diagnostics if d.rule == "CT301"]) == 1
