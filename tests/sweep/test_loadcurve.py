"""The latency-vs-load curve sweep: validation, knee, determinism."""

import dataclasses

import pytest

from repro.core.errors import LoadError
from repro.load import OverloadSpec, profile_by_name
from repro.sweep import CURVE_SCHEMA, run_load_curve
from repro.sweep.loadcurve import _check_multipliers, _find_knee

_HORIZON = 10_000_000.0


def _curve(profile=None, multipliers=(0.5, 1.0, 2.0, 4.0), **kwargs):
    if profile is None:
        profile = profile_by_name("steady")
    return run_load_curve(
        profile, seed=7, horizon_ns=_HORIZON,
        multipliers=multipliers, **kwargs,
    )


class TestValidation:
    @pytest.mark.parametrize("multipliers", [
        (),
        (0.0, 1.0),
        (-1.0,),
        (1.0, 1.0),
        (2.0, 1.0),
    ])
    def test_bad_multipliers_raise(self, multipliers):
        with pytest.raises(LoadError):
            _check_multipliers(multipliers)

    def test_knee_factor_must_exceed_one(self):
        with pytest.raises(LoadError):
            _curve(knee_factor=1.0)

    def test_duration_must_be_positive(self):
        with pytest.raises(LoadError):
            run_load_curve(
                profile_by_name("steady"), seed=7, horizon_ns=0.0
            )


class TestKnee:
    def test_flat_curve_has_no_knee(self):
        points = [
            {"multiplier": m, "p99_ns": 100.0} for m in (1.0, 2.0, 3.0)
        ]
        assert _find_knee(points, 3.0) is None

    def test_knee_is_first_blowup(self):
        points = [
            {"multiplier": 1.0, "p99_ns": 100.0},
            {"multiplier": 2.0, "p99_ns": 250.0},
            {"multiplier": 3.0, "p99_ns": 900.0},
            {"multiplier": 4.0, "p99_ns": 5_000.0},
        ]
        assert _find_knee(points, 3.0) == 3.0

    def test_all_zero_p99_has_no_knee(self):
        points = [{"multiplier": 1.0, "p99_ns": 0.0}]
        assert _find_knee(points, 3.0) is None

    def test_saturating_sweep_finds_a_knee(self):
        payload = _curve()
        assert payload["knee_multiplier"] in payload["multipliers"]


class TestPayload:
    def test_schema_and_point_order(self):
        payload = _curve()
        assert payload["schema"] == CURVE_SCHEMA
        assert [p["multiplier"] for p in payload["points"]] == [
            0.5, 1.0, 2.0, 4.0,
        ]
        for point in payload["points"]:
            assert point["offered"] >= point["completed"] >= 0

    def test_protected_points_carry_drop_counters(self):
        profile = dataclasses.replace(
            profile_by_name("steady"),
            overload=OverloadSpec(admission="bounded-queue", queue_limit=32),
        )
        payload = _curve(profile=profile)
        top = payload["points"][-1]
        for key in ("rejected", "evicted", "shed", "broken", "retried"):
            assert key in top
        assert top["rejected"] > 0           # 4x load engaged the gate

    def test_unprotected_points_omit_drop_counters(self):
        payload = _curve()
        assert "rejected" not in payload["points"][0]


class TestDeterminism:
    def test_workers_do_not_change_the_payload(self):
        from repro.load.report import canonical_json

        serial = _curve(multipliers=(0.5, 1.0, 2.0))
        fanned = _curve(multipliers=(0.5, 1.0, 2.0), workers=3)
        assert canonical_json(serial) == canonical_json(fanned)
