"""The ``python -m repro sweep`` command, including the acceptance
criterion: ``--workers 4`` output is bit-identical to ``--workers 1``."""

import json

import pytest

from repro.__main__ import EXIT_FAILURE, EXIT_OK, EXIT_USAGE, main

FAST_SPEC_PAYLOAD = {
    "kind": "transfer",
    "machines": ["t3d", "paragon"],
    "pairs": [["1", "1"], ["1", "64"]],
    "styles": ["buffer-packing", "chained"],
    "sizes": [8192],
    "rates": "paper",
}


def _spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(FAST_SPEC_PAYLOAD))
    return str(path)


def _run_json(capsys, *argv):
    code = main(["sweep", "--json", *argv])
    captured = capsys.readouterr()
    assert code == EXIT_OK
    return json.loads(captured.out)


class TestSweepCommand:
    def test_workers_4_bit_identical_to_workers_1(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        one = _run_json(capsys, "--spec", spec, "--workers", "1")
        four = _run_json(
            capsys, "--spec", spec, "--workers", "4", "--shard-size", "1"
        )
        assert one == four
        assert one["digest"] == four["digest"]

    def test_shuffle_seed_cannot_change_results(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        plain = _run_json(capsys, "--spec", spec, "--workers", "2")
        shuffled = _run_json(
            capsys, "--spec", spec, "--workers", "2",
            "--shuffle-seed", "1234",
        )
        assert plain == shuffled

    def test_json_payload_shape(self, tmp_path, capsys):
        payload = _run_json(capsys, "--spec", _spec_file(tmp_path))
        assert payload["schema"] == "repro-sweep-result/1"
        assert len(payload["results"]) == 8
        assert all("mbps" in row for row in payload["results"])

    def test_out_writes_canonical_json(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        out = tmp_path / "result.json"
        assert main(["sweep", "--spec", spec, "--out", str(out)]) == EXIT_OK
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-sweep-result/1"
        capsys.readouterr()

    def test_human_output_lists_cells(self, tmp_path, capsys):
        assert main(["sweep", "--spec", _spec_file(tmp_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "swept 8 cells" in out
        assert "t3d:1Q64:chained:8192" in out
        assert "digest" in out

    def test_seeds_add_a_fault_axis(self, tmp_path, capsys):
        payload = _run_json(
            capsys, "--spec", _spec_file(tmp_path), "--seeds", "3", "7"
        )
        assert len(payload["results"]) == 8 * 3  # nominal + 2 seeds
        assert any(
            row["id"].endswith(":seed7") for row in payload["results"]
        )

    def test_seeds_rejected_for_calibration_grid(self, capsys):
        code = main(
            ["sweep", "--grid", "calibration", "--seeds", "3"]
        )
        assert code == EXIT_FAILURE
        assert "transfer" in capsys.readouterr().err

    def test_bad_spec_file_is_operational_failure(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"machines": ["t3e"]}))
        assert main(["sweep", "--spec", str(path)]) == EXIT_FAILURE
        assert "unknown machine" in capsys.readouterr().err

    def test_missing_spec_file_is_operational_failure(self, capsys):
        assert main(["sweep", "--spec", "/no/such/spec.json"]) == EXIT_FAILURE
        capsys.readouterr()

    def test_unknown_grid_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--grid", "figure9"])
        assert excinfo.value.code == EXIT_USAGE
        capsys.readouterr()

    def test_worker_crash_is_one_line_error(self, tmp_path, monkeypatch, capfd):
        """A crashing worker initializer must exit 1 with the standard
        ``error:`` line — no raw multiprocessing traceback on stderr."""
        from repro.sweep import worker as worker_module

        def boom():
            raise RuntimeError("deliberate init crash")

        monkeypatch.setattr(worker_module, "reset_memos", boom)
        code = main(["sweep", "--spec", _spec_file(tmp_path), "--workers", "2"])
        out, err = capfd.readouterr()
        assert code == EXIT_FAILURE
        error_lines = [
            line for line in err.splitlines() if line.startswith("error: ")
        ]
        assert len(error_lines) == 1
        assert "deliberate init crash" in error_lines[0]
        assert "Traceback" not in err
        assert "Traceback" not in out

    def test_engine_batch_bit_identical_to_cell(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        cell = _run_json(capsys, "--spec", spec)
        batch = _run_json(capsys, "--spec", spec, "--engine", "batch")
        assert cell == batch
        assert cell["digest"] == batch["digest"]

    def test_unknown_engine_is_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["sweep", "--spec", _spec_file(tmp_path),
                 "--engine", "turbo"]
            )
        assert excinfo.value.code == EXIT_USAGE
        capsys.readouterr()


class TestFaultsSeedsCommand:
    def test_seed_population_report(self, capsys):
        code = main([
            "faults", "--seeds", "3", "11", "--bytes", "8192", "--json",
        ])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        payload = json.loads(captured.out)
        assert payload["schema"] == "repro-faults-sweep/1"
        assert [row["seed"] for row in payload["seeds"]] == [3, 11]
        assert payload["nominal"]["mbps"] > 0
        for row in payload["seeds"]:
            assert row["mbps"] <= payload["nominal"]["mbps"]
            assert "throughput_pct" in row["delta"]

    def test_duplicate_seeds_rejected(self, capsys):
        code = main([
            "faults", "--seeds", "5", "5", "3", "--bytes", "8192", "--json",
        ])
        captured = capsys.readouterr()
        assert code == EXIT_FAILURE
        assert captured.err.startswith("error: ")
        assert "duplicate" in captured.err

    def test_seeds_with_step_rejected(self, capsys):
        code = main([
            "faults", "--seeds", "3", "--step", "shift",
        ])
        assert code == EXIT_FAILURE
        assert "--step" in capsys.readouterr().err

    def test_human_report(self, capsys):
        code = main(["faults", "--seeds", "3", "--bytes", "8192"])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert "nominal:" in captured.out
        assert "seed     3:" in captured.out
