"""Runner strategies and worker batching: equality and bookkeeping.

These use ``rates="paper"`` grids — no simulator calibration — so the
whole file stays fast; the simulated-rates equalities live in the
property suite and the speed benchmark.
"""

import pytest

from repro.sweep import (
    NOMINAL_SEED,
    SweepError,
    SweepSpec,
    run_serial,
    run_sweep,
)
from repro.sweep import worker as worker_module
from repro.trace import tracing

FAST_SPEC = SweepSpec(
    machines=("t3d", "paragon"),
    pairs=(("1", "1"), ("1", "64"), ("w", "1")),
    sizes=(8192,),
    rates="paper",
)


class TestStrategies:
    def test_serial_batched_and_unbatched_agree(self):
        a = run_serial(FAST_SPEC, batched=False)
        b = run_serial(FAST_SPEC, batched=True)
        assert a.canonical_json() == b.canonical_json()

    def test_inline_matches_serial(self):
        assert (
            run_sweep(FAST_SPEC, workers=1).digest()
            == run_serial(FAST_SPEC).digest()
        )

    def test_pool_matches_serial(self):
        assert (
            run_sweep(FAST_SPEC, workers=2).digest()
            == run_serial(FAST_SPEC).digest()
        )

    def test_rows_align_with_cells(self):
        result = run_sweep(FAST_SPEC, workers=1)
        assert len(result.rows) == len(result.cells)
        for cell, row in zip(result.cells, result.rows):
            assert row["id"] == cell.cell_id

    def test_stats_record_strategy(self):
        assert run_sweep(FAST_SPEC, workers=1).stats["strategy"] == "inline"
        assert run_sweep(FAST_SPEC, workers=2).stats["strategy"] == "pool"

    def test_preflight_verify_counts_distinct_shapes(self):
        result = run_sweep(FAST_SPEC, workers=1, preflight_verify=True)
        # Every (machine, source, x, y, style, size) combination of the
        # spec is distinct here, so each cell is one verified shape.
        assert result.stats["preflight_verified"] == len(result.cells)
        # Verification must not perturb the results themselves.
        assert result.digest() == run_sweep(FAST_SPEC, workers=1).digest()

    def test_preflight_stat_absent_when_disabled(self):
        assert "preflight_verified" not in run_sweep(
            FAST_SPEC, workers=1
        ).stats
        assert run_serial(FAST_SPEC).stats["strategy"] == "serial"

    def test_seeded_cells_execute_under_fault_plans(self):
        spec = SweepSpec(
            machines=("t3d",),
            pairs=(("1", "64"),),
            styles=("chained",),
            sizes=(8192,),
            seeds=(NOMINAL_SEED, 7),
            rates="paper",
            duplex="off",
        )
        result = run_sweep(spec, workers=1)
        nominal, seeded = result.rows
        assert nominal["mbps"] > seeded["mbps"]
        assert "degraded" in seeded or seeded["retries"] >= 0

    def test_failing_cell_aborts_with_cell_name(self):
        bad = SweepSpec(machines=("t3d",)).expand()[0].to_dict()
        bad["x"] = "not-a-pattern"
        with pytest.raises(SweepError, match="failed"):
            worker_module.run_shard((0, ((0, bad),)))


class TestWorkerCrash:
    """A worker process that dies during initialization must surface
    as one :class:`SweepError`, never a raw multiprocessing traceback
    or a silently broken pool."""

    def test_crashing_initializer_raises_sweep_error(self, monkeypatch):
        def boom():
            raise RuntimeError("deliberate init crash")

        # init_worker calls reset_memos; with the fork start method the
        # children inherit the patched module, so every worker's
        # initializer fails.
        monkeypatch.setattr(worker_module, "reset_memos", boom)
        with pytest.raises(
            SweepError, match="initialization failed.*deliberate init crash"
        ):
            run_sweep(FAST_SPEC, workers=2)

    def test_init_worker_records_instead_of_raising(self, monkeypatch):
        def boom():
            raise RuntimeError("deliberate init crash")

        monkeypatch.setattr(worker_module, "reset_memos", boom)
        worker_module.init_worker({})  # must not raise (pool contract)
        assert "deliberate init crash" in worker_module._INIT_ERROR
        with pytest.raises(SweepError, match="initialization failed"):
            worker_module.run_shard((0, ()))
        monkeypatch.undo()
        worker_module.init_worker({})
        assert worker_module._INIT_ERROR is None

    def test_unpicklable_worker_failure_wrapped(self, monkeypatch):
        # Failures the pool itself raises (pickling, lost processes)
        # are wrapped in SweepError by the runner.
        from repro.sweep import runner as runner_module

        def explode(*args, **kwargs):
            raise BrokenPipeError("worker died")

        monkeypatch.setattr(
            runner_module.ProcessPoolExecutor, "submit", explode
        )
        with pytest.raises(SweepError, match="worker pool failed"):
            run_sweep(FAST_SPEC, workers=2)


class TestTracing:
    def test_sweep_emits_shard_spans_and_counters(self):
        with tracing() as tracer:
            run_sweep(FAST_SPEC, workers=1, shard_size=4)
        counters = tracer.metrics.counters()
        assert counters["sweep.cells"] == 12
        assert counters["sweep.shards"] == 3
        spans = tracer.spans("shard")
        assert len(spans) == 3
        assert {span.track for span in spans} == {"sweep"}
        (sweep_span,) = tracer.spans("sweep")
        assert sweep_span.args["cells"] == 12


class TestWorkerHygiene:
    def test_reset_memos_clears_everything(self):
        worker_module.machine_by_key("t3d")
        assert worker_module._machines
        worker_module.reset_memos()
        assert not worker_module._machines
        assert not worker_module._tables
        assert not worker_module._runtimes

    def test_unknown_machine_key_raises(self):
        with pytest.raises(SweepError, match="unknown machine"):
            worker_module.machine_by_key("cm5")

    def test_init_worker_pins_environment(self, monkeypatch):
        from repro.memsim.node import ENGINE_ENV

        monkeypatch.setenv(ENGINE_ENV, "scalar")
        worker_module.init_worker({})
        assert ENGINE_ENV not in __import__("os").environ
        worker_module.init_worker({ENGINE_ENV: "auto"})
        assert __import__("os").environ[ENGINE_ENV] == "auto"

    def test_pinned_environment_round_trips(self, monkeypatch):
        from repro.caching import CACHE_ENV

        monkeypatch.setenv(CACHE_ENV, "off")
        snapshot = worker_module.pinned_environment()
        assert snapshot[CACHE_ENV] == "off"
