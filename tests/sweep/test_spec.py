"""SweepSpec / SweepCell: validation, expansion, serialization."""

import dataclasses

import pytest

from repro.sweep import (
    GRID_BYTES,
    GRID_PAIRS,
    NOMINAL_SEED,
    SweepCell,
    SweepError,
    SweepSpec,
    calibration_spec,
    figure7_spec,
    figure8_spec,
)


class TestValidation:
    def test_default_spec_is_valid(self):
        SweepSpec().validate()

    def test_unknown_machine_rejected(self):
        with pytest.raises(SweepError, match="unknown machine"):
            SweepSpec(machines=("t3e",)).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(SweepError, match="unknown sweep kind"):
            SweepSpec(kind="transmogrify").validate()

    def test_unknown_style_rejected(self):
        with pytest.raises(SweepError, match="operation style"):
            SweepSpec(styles=("zero-copy",)).validate()

    def test_unknown_rates_rejected(self):
        with pytest.raises(SweepError, match="rate source"):
            SweepSpec(rates="measured").validate()

    def test_bad_duplex_rejected(self):
        with pytest.raises(SweepError, match="duplex"):
            SweepSpec(duplex="half").validate()

    def test_nonpositive_size_rejected(self):
        with pytest.raises(SweepError, match="sizes must be"):
            SweepSpec(sizes=(0,)).validate()

    def test_empty_machines_rejected(self):
        with pytest.raises(SweepError, match="at least one machine"):
            SweepSpec(machines=()).validate()

    def test_calibrate_needs_positive_nwords(self):
        with pytest.raises(SweepError, match="nwords"):
            SweepSpec(kind="calibrate", nwords=0).validate()


class TestExpansion:
    def test_axes_multiply(self):
        spec = SweepSpec(
            machines=("t3d", "paragon"),
            x=("1", "64"),
            y=("1", "w"),
            styles=("chained",),
            sizes=(1024, 2048),
            seeds=(NOMINAL_SEED, 3),
        )
        assert len(spec.expand()) == 2 * 2 * 2 * 1 * 2 * 2

    def test_pairs_override_cross_product(self):
        spec = SweepSpec(pairs=(("1", "64"),), x=("1", "w"), y=("1", "w"))
        cells = spec.expand()
        assert {(c.x, c.y) for c in cells} == {("1", "64")}

    def test_canonical_order_is_machine_major(self):
        spec = SweepSpec(
            machines=("t3d", "paragon"), pairs=(("1", "1"), ("1", "64"))
        )
        machines = [cell.machine for cell in spec.expand()]
        assert machines == sorted(machines, key=("t3d", "paragon").index)

    def test_no_seeds_means_nominal(self):
        for cell in SweepSpec().expand():
            assert cell.seed == NOMINAL_SEED

    def test_figure7_preset_matches_paper_grid(self):
        cells = figure7_spec().expand()
        assert len(cells) == len(GRID_PAIRS) * 2
        assert {cell.machine for cell in cells} == {"t3d"}
        assert all(cell.size == GRID_BYTES for cell in cells)
        assert [(c.x, c.y) for c in cells[::2]] == list(GRID_PAIRS)

    def test_figure8_preset_is_paragon(self):
        assert {c.machine for c in figure8_spec().expand()} == {"paragon"}

    def test_calibration_expansion_matches_measure_grid(self):
        from repro.machines import t3d
        from repro.machines.measure import calibration_entries

        spec = calibration_spec("t3d", nwords=2048)
        cells = spec.expand()
        entries = calibration_entries(t3d())
        assert len(cells) == len(entries)
        assert [(c.style, c.x, c.y) for c in cells] == [
            (letter, str(read), str(write))
            for letter, read, write in entries
        ]
        assert all(cell.kind == "calibrate" for cell in cells)

    def test_expand_validates(self):
        with pytest.raises(SweepError):
            SweepSpec(machines=("nope",)).expand()


class TestSerialization:
    def test_spec_round_trips(self):
        spec = SweepSpec(
            machines=("paragon",),
            pairs=(("1", "64"), ("w", "1")),
            sizes=(4096,),
            seeds=(1, 2),
            rates="paper",
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_cell_round_trips(self):
        cell = figure7_spec().expand()[3]
        assert SweepCell.from_dict(cell.to_dict()) == cell

    def test_unknown_field_rejected(self):
        payload = SweepSpec().to_dict()
        payload["shards"] = 4
        with pytest.raises(SweepError, match="unknown fields"):
            SweepSpec.from_dict(payload)

    def test_from_dict_validates(self):
        payload = SweepSpec().to_dict()
        payload["machines"] = ["t3e"]
        with pytest.raises(SweepError, match="unknown machine"):
            SweepSpec.from_dict(payload)

    def test_json_round_trip_preserves_expansion(self):
        import json

        spec = figure7_spec()
        reloaded = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert reloaded.expand() == spec.expand()


class TestCellIds:
    def test_transfer_cell_id(self):
        cell = SweepCell(
            kind="transfer", machine="t3d", x="1", y="64",
            style="chained", size=131072,
        )
        assert cell.cell_id == "t3d:1Q64:chained:131072"

    def test_seeded_cell_id_names_seed(self):
        cell = SweepCell(
            kind="transfer", machine="t3d", x="1", y="64",
            style="chained", size=131072, seed=42,
        )
        assert cell.cell_id.endswith(":seed42")

    def test_calibrate_cell_id_uses_table_notation(self):
        cell = SweepCell(
            kind="calibrate", machine="t3d", x="1", y="64",
            style="C", size=32768,
        )
        assert cell.cell_id == "t3d:cal:1C64@32768w"

    def test_cell_ids_unique_within_grid(self):
        spec = dataclasses.replace(figure7_spec(), seeds=(NOMINAL_SEED, 5))
        ids = [cell.cell_id for cell in spec.expand()]
        assert len(ids) == len(set(ids))
