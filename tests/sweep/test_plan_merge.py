"""Planner and deterministic merge: shapes, affinity, loud failures."""

import pytest

from repro.sweep import (
    SweepError,
    SweepResult,
    default_shard_size,
    figure7_spec,
    merge_rows,
    plan_shards,
)
from repro.sweep.spec import SweepSpec


def _cells():
    return SweepSpec(
        machines=("t3d", "paragon"), pairs=(("1", "1"), ("1", "64"))
    ).expand()


class TestPlanner:
    def test_every_cell_planned_exactly_once(self):
        cells = _cells()
        shards = plan_shards(cells, shard_size=3)
        planned = sorted(
            index for shard in shards for index, __ in shard.cells
        )
        assert planned == list(range(len(cells)))

    def test_shard_size_respected(self):
        shards = plan_shards(_cells(), shard_size=3)
        assert all(len(shard) <= 3 for shard in shards)

    def test_machine_affinity_grouping(self):
        # With shard_size spanning one machine's cells exactly, no
        # shard should mix machines (one calibration table per shard).
        cells = _cells()
        per_machine = len(cells) // 2
        shards = plan_shards(cells, shard_size=per_machine)
        assert all(len(shard.machines) == 1 for shard in shards)

    def test_shuffle_permutes_submission_order_only(self):
        cells = _cells()
        plain = plan_shards(cells, shard_size=2)
        shuffled = plan_shards(cells, shard_size=2, shuffle_seed=99)
        assert sorted(s.index for s in plain) == sorted(
            s.index for s in shuffled
        )
        by_index = {s.index: s for s in plain}
        assert all(by_index[s.index] == s for s in shuffled)

    def test_shuffle_is_deterministic(self):
        cells = _cells()
        a = plan_shards(cells, shard_size=2, shuffle_seed=5)
        b = plan_shards(cells, shard_size=2, shuffle_seed=5)
        assert a == b

    def test_nonpositive_shard_size_rejected(self):
        with pytest.raises(SweepError, match="shard size"):
            plan_shards(_cells(), shard_size=0)

    def test_default_shard_size_scales_with_workers(self):
        assert default_shard_size(0, 4) == 1
        assert default_shard_size(100, 1) > default_shard_size(100, 8)
        # Enough shards for every worker to get a few.
        assert 100 // default_shard_size(100, 4) >= 4


class TestMerge:
    def test_rows_land_at_canonical_indices(self):
        cells = _cells()
        rows = [{"id": cell.cell_id} for cell in cells]
        shuffled = list(enumerate(rows))
        shuffled.reverse()
        assert merge_rows(cells, shuffled) == tuple(rows)

    def test_missing_cell_fails_loudly(self):
        cells = _cells()
        with pytest.raises(SweepError, match="never reported"):
            merge_rows(cells, [(0, {"id": "only-one"})])

    def test_duplicate_cell_fails_loudly(self):
        cells = _cells()
        rows = [(i, {"id": c.cell_id}) for i, c in enumerate(cells)]
        with pytest.raises(SweepError, match="reported twice"):
            merge_rows(cells, rows + [rows[0]])

    def test_out_of_range_index_fails_loudly(self):
        with pytest.raises(SweepError, match="outside"):
            merge_rows(_cells(), [(999, {"id": "ghost"})])


class TestResultPayload:
    def test_round_trip(self):
        spec = figure7_spec()
        rows = tuple({"id": c.cell_id, "mbps": 1.0} for c in spec.expand())
        result = SweepResult(spec=spec, rows=rows, stats={"workers": 4})
        reloaded = SweepResult.from_dict(result.to_dict())
        assert reloaded == result
        assert reloaded.digest() == result.digest()

    def test_stats_never_reach_the_canonical_payload(self):
        spec = figure7_spec()
        rows = tuple({"id": c.cell_id} for c in spec.expand())
        a = SweepResult(spec=spec, rows=rows, stats={"elapsed_s": 1.0})
        b = SweepResult(spec=spec, rows=rows, stats={"elapsed_s": 9.9})
        assert a.canonical_json() == b.canonical_json()
        assert "elapsed_s" not in a.canonical_json()

    def test_wrong_schema_rejected(self):
        with pytest.raises(SweepError, match="schema"):
            SweepResult.from_dict({"schema": "repro-sweep-result/0"})

    def test_row_count_mismatch_rejected(self):
        payload = SweepResult(
            spec=figure7_spec(),
            rows=tuple(
                {"id": c.cell_id} for c in figure7_spec().expand()
            ),
        ).to_dict()
        payload["results"] = payload["results"][:-1]
        with pytest.raises(SweepError, match="rows"):
            SweepResult.from_dict(payload)

    def test_row_lookup_by_cell_id(self):
        spec = figure7_spec()
        rows = tuple(
            {"id": c.cell_id, "mbps": float(i)}
            for i, c in enumerate(spec.expand())
        )
        result = SweepResult(spec=spec, rows=rows)
        assert result.row("t3d:1Q64:chained:131072")["mbps"] == 3.0
        with pytest.raises(KeyError):
            result.row("t3d:9Q9:chained:131072")
