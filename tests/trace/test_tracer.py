"""Tests for the tracer core (repro.trace.tracer)."""

import pytest

from repro.trace import Tracer, current_tracer, tracing


class TestScoping:
    def test_off_by_default(self):
        assert current_tracer() is None

    def test_installed_inside_block(self):
        with tracing() as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_nested_blocks_shadow(self):
        with tracing() as outer:
            with tracing() as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer

    def test_explicit_tracer_reused(self):
        tracer = Tracer()
        with tracing(tracer) as active:
            assert active is tracer

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert current_tracer() is None


class TestSpans:
    def test_span_recorded(self):
        tracer = Tracer()
        tracer.span("gather", track="cpu", start_ns=10.0, duration_ns=5.0,
                    category="stage", chunk=3)
        (span,) = tracer.spans()
        assert span.name == "gather"
        assert span.track == "cpu"
        assert span.end_ns == 15.0
        assert span.args["chunk"] == 3

    def test_category_filter(self):
        tracer = Tracer()
        tracer.span("a", track="t", start_ns=0, duration_ns=1, category="phase")
        tracer.span("b", track="t", start_ns=1, duration_ns=1, category="stage")
        assert [s.name for s in tracer.spans("phase")] == ["a"]

    def test_tracks_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.span("a", track="net", start_ns=0, duration_ns=1)
        tracer.span("b", track="cpu", start_ns=0, duration_ns=1)
        tracer.span("c", track="net", start_ns=1, duration_ns=1)
        assert tracer.tracks() == ("net", "cpu")

    def test_end_ns(self):
        tracer = Tracer()
        assert tracer.end_ns() == 0.0
        tracer.span("a", track="t", start_ns=5.0, duration_ns=10.0)
        tracer.span("b", track="t", start_ns=0.0, duration_ns=2.0)
        assert tracer.end_ns() == 15.0

    def test_shifted_offsets_nested_spans(self):
        tracer = Tracer()
        with tracer.shifted(100.0):
            tracer.span("inner", track="t", start_ns=5.0, duration_ns=1.0)
            with tracer.shifted(1000.0):
                tracer.span("deeper", track="t", start_ns=0.0, duration_ns=1.0)
        tracer.span("outer", track="t", start_ns=0.0, duration_ns=1.0)
        starts = {s.name: s.start_ns for s in tracer.spans()}
        assert starts == {"inner": 105.0, "deeper": 1100.0, "outer": 0.0}

    def test_shifted_restores_on_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.shifted(50.0):
                raise ValueError
        assert tracer.offset_ns == 0.0


class TestCounters:
    def test_count_updates_metrics_and_samples(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 4.0)
        assert tracer.metrics.counter("hits") == 5.0
        assert [c.value for c in tracer.counters()] == [1.0, 4.0]

    def test_observe_feeds_histogram(self):
        tracer = Tracer()
        tracer.observe("wait_ns", 10.0)
        tracer.observe("wait_ns", 30.0)
        assert tracer.metrics.histogram("wait_ns").mean == 20.0

    def test_len_counts_spans(self):
        tracer = Tracer()
        assert len(tracer) == 0
        tracer.span("a", track="t", start_ns=0, duration_ns=1)
        assert len(tracer) == 1
