"""Tests for the metrics registry (repro.trace.metrics)."""

import pytest

from repro.trace import MetricsRegistry


class TestCounters:
    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0.0

    def test_inc_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("n")
        metrics.inc("n", 2.5)
        assert metrics.counter("n") == 3.5

    def test_counters_view_is_a_copy(self):
        metrics = MetricsRegistry()
        metrics.inc("n")
        view = metrics.counters()
        view["n"] = 99.0
        assert metrics.counter("n") == 1.0


class TestHistograms:
    def test_empty_histogram_summary(self):
        summary = MetricsRegistry().histogram("nope")
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_summary_statistics(self):
        metrics = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 10.0):
            metrics.observe("lat", value)
        summary = metrics.histogram("lat")
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 10.0
        assert summary.mean == 4.0

    def test_percentiles(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):
            metrics.observe("v", float(value))
        assert metrics.percentile("v", 0) == 1.0
        assert metrics.percentile("v", 100) == 100.0
        assert 45.0 <= metrics.percentile("v", 50) <= 55.0

    def test_percentile_out_of_range_rejected(self):
        metrics = MetricsRegistry()
        metrics.observe("v", 1.0)
        with pytest.raises(ValueError):
            metrics.percentile("v", 101.0)

    def test_percentile_of_missing_is_zero(self):
        assert MetricsRegistry().percentile("nope", 50) == 0.0


class TestSnapshot:
    def test_snapshot_mixes_counters_and_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("count", 2)
        metrics.observe("lat", 5.0)
        snap = metrics.snapshot()
        assert snap["count"] == 2.0
        assert snap["lat"]["count"] == 1.0
        assert snap["lat"]["mean"] == 5.0

    def test_len(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.observe("b", 1.0)
        assert len(metrics) == 2
