"""Trace-off parity: tracing must never change a result.

Every traced entry point is run twice — once with a tracer installed,
once without — and the results must be bit-identical.  Tracing is an
observer: it reads model state, it never feeds back into timing.
"""

from repro.core.patterns import CONTIGUOUS, strided
from repro.netsim.patterns import all_to_all
from repro.runtime.collective import CommunicationStep
from repro.runtime.engine import CommRuntime
from repro.runtime.stages import Stage, StagePipeline
from repro.trace import current_tracer, tracing


def test_transfer_bit_identical(t3d_machine):
    runtime = CommRuntime(t3d_machine, rates="paper")
    plain = runtime.transfer(CONTIGUOUS, strided(64), 131072, duplex=True)
    with tracing():
        traced = runtime.transfer(
            CONTIGUOUS, strided(64), 131072, duplex=True
        )
    assert traced == plain


def test_pipeline_bit_identical():
    stages = [
        Stage("a", 100.0, "cpu", chunk_overhead_ns=500.0),
        Stage("b", 150.0, "net", startup_ns=2000.0),
    ]
    plain = StagePipeline(stages).run(1 << 16, chunk_bytes=4096)
    with tracing():
        traced = StagePipeline(stages).run(1 << 16, chunk_bytes=4096)
    assert traced == plain


def test_step_bit_identical(t3d_machine):
    runtime = CommRuntime(t3d_machine, rates="paper")

    def run_step():
        return CommunicationStep(
            runtime, all_to_all(4), CONTIGUOUS, CONTIGUOUS, 8192
        ).run()

    plain = run_step()
    with tracing():
        traced = run_step()
    assert traced == plain


def test_memsim_kernel_bit_identical(t3d_machine):
    # Fresh harnesses each time: results are memoized per instance, so
    # reusing one would compare a cached result against itself.
    def run_kernel():
        node = t3d_machine.node_memory(nwords=2048)
        return node.copy_result(CONTIGUOUS, strided(8))

    plain = run_kernel()
    with tracing():
        traced = run_kernel()
    assert traced == plain


def test_calibration_table_bit_identical(t3d_machine):
    from repro.machines.measure import measure_table

    plain = measure_table(t3d_machine, nwords=512, use_cache=False)
    with tracing():
        traced = measure_table(t3d_machine, nwords=512, use_cache=False)
    assert traced.to_dict() == plain.to_dict()


def test_no_tracer_leaks_out_of_entry_points(t3d_machine):
    runtime = CommRuntime(t3d_machine, rates="paper")
    with tracing() as tracer:
        runtime.transfer(CONTIGUOUS, CONTIGUOUS, 8192)
    assert len(tracer) > 0
    assert current_tracer() is None
    # And with no tracer installed nothing records anywhere.
    runtime.transfer(CONTIGUOUS, CONTIGUOUS, 8192)
    assert current_tracer() is None
