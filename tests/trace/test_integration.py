"""End-to-end tracing of the runtime, memsim and caching layers."""

import pytest

from repro.core.operations import OperationStyle
from repro.core.patterns import CONTIGUOUS, strided
from repro.runtime.collective import CommunicationStep
from repro.runtime.engine import CommRuntime
from repro.runtime.stages import Stage, StagePipeline
from repro.trace import chrome_trace, tracing, validate_chrome_trace


@pytest.fixture(scope="module")
def runtime(t3d_machine):
    return CommRuntime(t3d_machine, rates="paper")


class TestTransferTracing:
    def test_phase_spans_sum_to_reported_ns(self, runtime):
        """The headline invariant: phases partition the measured time."""
        with tracing() as tracer:
            result = runtime.transfer(CONTIGUOUS, strided(64), 131072)
        phase_sum = sum(s.duration_ns for s in tracer.spans("phase"))
        assert phase_sum == pytest.approx(result.ns, rel=1e-9)

    def test_phase_spans_sum_for_packing_and_duplex(self, runtime):
        for style in OperationStyle:
            for duplex in (False, True):
                with tracing() as tracer:
                    result = runtime.transfer(
                        CONTIGUOUS, strided(64), 65536,
                        style=style, duplex=duplex,
                    )
                phase_sum = sum(
                    s.duration_ns for s in tracer.spans("phase")
                )
                assert phase_sum == pytest.approx(result.ns, rel=1e-9), (
                    style, duplex,
                )

    def test_stage_spans_cover_resources(self, runtime):
        with tracing() as tracer:
            runtime.transfer(CONTIGUOUS, strided(64), 131072)
        tracks = {s.track for s in tracer.spans("stage")}
        assert {"sender_cpu", "network"} <= tracks

    def test_duplex_cap_counted(self, runtime):
        with tracing() as tracer:
            result = runtime.transfer(
                CONTIGUOUS, CONTIGUOUS, 1 << 20, duplex=True
            )
        if result.memory_capped:
            assert tracer.metrics.counter("runtime.duplex_caps") == 1.0

    def test_trace_exports_valid_chrome_json(self, runtime):
        with tracing() as tracer:
            runtime.transfer(CONTIGUOUS, strided(64), 131072)
        assert validate_chrome_trace(chrome_trace(tracer)) == []


class TestPipelineTracing:
    def test_chunk_spans_and_waits(self):
        stages = [Stage("a", 100.0, "cpu"), Stage("b", 50.0, "net")]
        with tracing() as tracer:
            result = StagePipeline(stages).run(1 << 16, chunk_bytes=8192)
        chunk_spans = tracer.spans("stage")
        # 8 chunks x 2 stages.
        assert len(chunk_spans) == 16
        assert max(s.end_ns for s in chunk_spans) == pytest.approx(result.ns)
        # The fast stage ends up waiting on the slow one's resource
        # hand-off, so some wait must have been observed.
        assert tracer.metrics.histogram("pipeline.resource_wait_ns").count > 0

    def test_phase_prefix_applied(self):
        with tracing() as tracer:
            StagePipeline([Stage("a", 100.0, "cpu")]).run(
                8192, trace_phase="pack"
            )
        assert tracer.spans("stage")[0].name == "pack:a"


class TestStepTracing:
    def test_step_spans_sum_to_step_ns(self, runtime):
        from repro.netsim.patterns import all_to_all

        step = CommunicationStep(
            runtime, all_to_all(8), CONTIGUOUS, strided(64), 8192
        )
        with tracing() as tracer:
            result = step.run()
        step_sum = sum(s.duration_ns for s in tracer.spans("step"))
        assert step_sum == pytest.approx(result.step_ns, rel=1e-9)
        assert tracer.metrics.counter("step.messages_per_node") == 7.0


class TestMemsimTracing:
    def test_kernel_counters_emitted(self, t3d_machine):
        node = t3d_machine.node_memory(nwords=2048)
        node.clear_cache()
        with tracing() as tracer:
            node.measure_copy(CONTIGUOUS, strided(8))
        metrics = tracer.metrics
        assert metrics.counter("memsim.kernels") >= 1.0
        total_probes = (
            metrics.counter("memsim.cache_hits")
            + metrics.counter("memsim.cache_misses")
        )
        assert total_probes > 0
        assert (
            metrics.counter("memsim.page_hits")
            + metrics.counter("memsim.page_misses")
        ) > 0
        assert metrics.counter("memsim.wb_drains") > 0

    def test_scalar_and_fast_counters_agree(self, t3d_machine):
        shared = (
            "memsim.kernels",
            "memsim.cache_hits",
            "memsim.cache_misses",
            "memsim.page_hits",
            "memsim.page_misses",
            "memsim.wb_drains",
        )
        results = {}
        for mode in ("scalar", "fast"):
            node = t3d_machine.node_memory(nwords=2048)
            node.engine = mode
            with tracing() as tracer:
                node.measure_copy(CONTIGUOUS, strided(8))
            results[mode] = {
                name: tracer.metrics.counter(name) for name in shared
            }
        assert results["scalar"] == results["fast"]

    def test_memo_hits_counted(self, t3d_machine):
        node = t3d_machine.node_memory(nwords=2048)
        node.clear_cache()
        with tracing() as tracer:
            node.measure_copy(CONTIGUOUS, CONTIGUOUS)
            node.measure_copy(CONTIGUOUS, CONTIGUOUS)
        assert tracer.metrics.counter("memsim.memo_hits") == 1.0


class TestCalibrationCacheTracing:
    def test_miss_store_then_hit(self, t3d_machine, monkeypatch, tmp_path):
        from repro.caching import default_cache
        from repro.machines.measure import measure_table

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        default_cache().clear()
        with tracing() as tracer:
            measure_table(t3d_machine, nwords=512)
        assert tracer.metrics.counter("calibration_cache.miss") == 1.0
        assert tracer.metrics.counter("calibration_cache.store") == 1.0
        with tracing() as tracer:
            measure_table(t3d_machine, nwords=512)
        assert tracer.metrics.counter("calibration_cache.memory_hit") == 1.0
