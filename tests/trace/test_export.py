"""Tests for trace exporters and the schema validator."""

import json

from repro.trace import (
    Tracer,
    chrome_trace,
    render_timeline,
    utilization,
    validate_chrome_trace,
)


def sample_tracer():
    tracer = Tracer()
    tracer.span("pack", track="phase", start_ns=0, duration_ns=400,
                category="phase")
    tracer.span("gather", track="sender_cpu", start_ns=0, duration_ns=300,
                category="stage", chunk=0)
    tracer.span("net", track="network", start_ns=300, duration_ns=500,
                category="stage", chunk=0)
    tracer.count("runtime.transfers")
    tracer.observe("wait_ns", 12.5)
    return tracer


class TestChromeTrace:
    def test_round_trips_through_json(self):
        payload = chrome_trace(sample_tracer())
        assert json.loads(json.dumps(payload)) == payload

    def test_validates_against_schema(self):
        assert validate_chrome_trace(chrome_trace(sample_tracer())) == []

    def test_thread_names_emitted(self):
        payload = chrome_trace(sample_tracer())
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M"
        }
        assert names == {"phase", "sender_cpu", "network"}

    def test_spans_become_complete_events_in_us(self):
        payload = chrome_trace(sample_tracer())
        net = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "net"
        ]
        assert net[0]["ts"] == 0.3  # 300 ns -> 0.3 us
        assert net[0]["dur"] == 0.5

    def test_counters_become_counter_events(self):
        payload = chrome_trace(sample_tracer())
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["name"] == "runtime.transfers"
        assert counters[0]["args"]["value"] == 1.0

    def test_metadata_and_metrics_attached(self):
        payload = chrome_trace(sample_tracer(), metadata={"machine": "T3D"})
        assert payload["metadata"]["machine"] == "T3D"
        assert payload["metrics"]["runtime.transfers"] == 1.0
        assert payload["metrics"]["wait_ns"]["count"] == 1.0


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) != []

    def test_rejects_empty_event_list(self):
        assert validate_chrome_trace({"traceEvents": []}) != []

    def test_rejects_bad_phase(self):
        payload = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0}]}
        errors = validate_chrome_trace(payload)
        assert any("ph" in e for e in errors)

    def test_rejects_negative_duration(self):
        payload = {
            "traceEvents": [
                {"ph": "X", "name": "x", "pid": 0, "tid": 0,
                 "ts": 0.0, "dur": -1.0}
            ]
        }
        errors = validate_chrome_trace(payload)
        assert any("negative" in e for e in errors)

    def test_rejects_non_numeric_counter(self):
        payload = {
            "traceEvents": [
                {"ph": "C", "name": "c", "pid": 0, "tid": 0, "ts": 0,
                 "args": {"value": "high"}}
            ]
        }
        assert validate_chrome_trace(payload) != []

    def test_rejects_metadata_without_name(self):
        payload = {
            "traceEvents": [{"ph": "M", "name": "thread_name", "pid": 0,
                             "tid": 0, "args": {}}]
        }
        assert validate_chrome_trace(payload) != []


class TestUtilization:
    def test_busy_fractions(self):
        busy = utilization(sample_tracer())
        # Trace spans 0..800 ns; gather busy 300, net busy 500.
        assert busy["sender_cpu"] == 300 / 800
        assert busy["network"] == 500 / 800
        assert "phase" not in busy  # logical lane, not a resource

    def test_empty_tracer(self):
        assert utilization(Tracer()) == {}


class TestTimeline:
    def test_renders_all_tracks(self):
        text = render_timeline(sample_tracer())
        for track in ("phase", "sender_cpu", "network"):
            assert track in text

    def test_empty_tracer_message(self):
        assert "empty" in render_timeline(Tracer())
