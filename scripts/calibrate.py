#!/usr/bin/env python
"""Compare simulator-measured basic transfers with the paper's tables.

Run during development to tune the machine configs:

    python scripts/calibrate.py [--words 16384]
"""

from __future__ import annotations

import argparse

from repro.machines import paragon, t3d


def compare(machine, nwords: int) -> None:
    published = machine.paper_table()
    simulated = machine.simulated_table(nwords=nwords)
    pub = published.to_dict()
    sim = simulated.to_dict()
    print(f"\n=== {machine.name} ===")
    print(f"{'transfer':>10} {'paper':>8} {'simulated':>10} {'ratio':>7}")
    for key in sorted(pub):
        if key in sim:
            ratio = sim[key] / pub[key]
            flag = "" if 0.85 <= ratio <= 1.18 else "  <-- off"
            print(f"{key:>10} {pub[key]:8.1f} {sim[key]:10.1f} {ratio:7.2f}{flag}")
    extras = sorted(set(sim) - set(pub))
    if extras:
        print("extra simulated entries:")
        for key in extras:
            print(f"{key:>10} {'':8} {sim[key]:10.1f}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--words", type=int, default=16384)
    args = parser.parse_args()
    for machine in (t3d(), paragon()):
        compare(machine, args.words)


if __name__ == "__main__":
    main()
