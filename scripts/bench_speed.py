#!/usr/bin/env python
"""Wall-clock benchmark of the calibration path: scalar vs fast engine.

Times end-to-end regeneration of the paper experiments that lean on
the memory-system simulator — Table 1 calibration, the Figure 4 stride
curves, the Figure 7 strategy comparison — once forced onto the scalar
reference oracle and once on the vectorized fast path, plus a
cache-warm rerun.  Emits ``BENCH_speed.json`` so the performance
trajectory stays visible across changes:

    python scripts/bench_speed.py [--output BENCH_speed.json]

The fast path must not change answers, so the harness also
cross-checks a headline figure between the two engines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.caching import CACHE_ENV, default_cache  # noqa: E402
from repro.core.batch import BATCH_VERSION  # noqa: E402
from repro.memsim.engine import ENGINE_VERSION  # noqa: E402
from repro.memsim.fastpath import FASTPATH_VERSION  # noqa: E402
from repro.memsim.node import ENGINE_ENV  # noqa: E402

#: The acceptance bar: figure-4 regeneration at least this much faster.
FIG4_TARGET_SPEEDUP = 5.0

#: The sweep acceptance bar: the sharded engine regenerates the
#: figure-7 grid at least this much faster than the serial per-cell
#: loop it replaced (worker batching + process parallelism).
SWEEP_TARGET_SPEEDUP = 2.0

#: Worker processes for the sweep benchmark.
SWEEP_WORKERS = 4

#: The batched engine target: vectorized figure-7 regeneration at
#: least this much faster than the honest serial per-cell loop.
BATCH_TARGET_SPEEDUP = 10.0

#: Hard regression floor for CI: below this the bench fails (between
#: floor and target it warns — single-run wall clocks on shared CI
#: hardware are noisy).
BATCH_FLOOR_SPEEDUP = 8.0

#: Tracing the figure-4 regeneration may cost at most this fraction of
#: the untraced run.  This is a hard gate: the overhead estimate is
#: the *median of per-round ratios* over rotated-order rounds (see
#: below), which is stable on shared hardware where single-shot ratios
#: swing by double digits.
TRACE_OVERHEAD_LIMIT = 0.02

#: An installed-but-empty fault plan must stay within the same bound:
#: the faults-off path is one context-var read per transfer.
FAULTS_OVERHEAD_LIMIT = 0.02

#: Rounds for the overhead measurement (each round times every mode
#: once, in rotated order).
OVERHEAD_ROUNDS = 7

#: The traffic engine must sustain at least this many discrete events
#: per wall-clock second (warn below target, fail below floor).
LOAD_TARGET_EVENTS_PER_S = 25_000.0
LOAD_FLOOR_EVENTS_PER_S = 8_000.0

#: Simulated horizon for the load benchmark.
LOAD_HORIZON_NS = 5e8

#: Pinned digest of the protection-off bench run.  The overload-
#: protection layer must not move a single byte of the unprotected
#: engine's canonical output — this is the regression tripwire.
LOAD_PROTECTION_OFF_DIGEST = (
    "2c3d33266f3778e6643a8f849dfb36f4a3afca45d1274b67512cc0ccc75fa3d0"
)

FIG4_STRIDES = (2, 4, 8, 16, 32, 64)


def _regen_figure4():
    from repro.bench import figure4
    from repro.machines import paragon, t3d

    return {
        "t3d": figure4(t3d(), FIG4_STRIDES),
        "paragon": figure4(paragon(), FIG4_STRIDES),
    }


def _regen_table1():
    from repro.bench import table1
    from repro.machines import paragon, t3d

    return {
        "t3d": [row.ours for row in table1(t3d())],
        "paragon": [row.ours for row in table1(paragon())],
    }


def _regen_figure7():
    from repro.bench import figure7

    return figure7()


SECTIONS = {
    "figure4": _regen_figure4,
    "table1": _regen_table1,
    "figure7": _regen_figure7,
}


def _timed(fn, repeat: int):
    """Best-of-``repeat`` wall time and the last result."""
    best = float("inf")
    result = None
    for __ in range(repeat):
        default_cache().clear()
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _run_mode(mode: str, repeat: int):
    """Time every section with the given engine forced."""
    os.environ[ENGINE_ENV] = mode
    timings = {}
    results = {}
    for name, fn in SECTIONS.items():
        timings[name], results[name] = _timed(fn, repeat)
    return timings, results


def _flatten_fig4(curves) -> list:
    return [
        rate
        for machine_curves in curves.values()
        for series in machine_curves.values()
        for __, rate in series
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_speed.json")
    parser.add_argument("--repeat", type=int, default=1,
                        help="take the best of N runs per section")
    args = parser.parse_args()

    # Engine-vs-engine timings exclude the calibration cache; it gets
    # its own measurement below.
    os.environ[CACHE_ENV] = "off"

    scalar_times, scalar_results = _run_mode("scalar", args.repeat)
    fast_times, fast_results = _run_mode("auto", args.repeat)

    # Parity spot check on the headline numbers.
    mismatches = [
        (a, b)
        for a, b in zip(
            _flatten_fig4(scalar_results["figure4"]),
            _flatten_fig4(fast_results["figure4"]),
        )
        if abs(a - b) > 1e-6 * max(abs(a), abs(b), 1.0)
    ]

    # Tracer overhead: with a tracer installed, the figure-4 regen pays
    # only counter increments per kernel; it must stay within noise of
    # the untraced run (the trace-off path is a single context-var read).
    from repro.trace import tracing

    def _fig4_traced():
        with tracing():
            return _regen_figure4()

    # Faults-off overhead: an installed-but-empty fault plan must cost
    # no more than the context-var read the instrumentation pays.
    from repro.faults import FaultPlan, injecting

    def _fig4_empty_plan():
        with injecting(FaultPlan(seed=0)):
            return _regen_figure4()

    # Interleaved, rotated rounds with a median-of-ratios estimate.
    # Each round times every mode back to back, so clock drift hits all
    # modes equally; the order rotates each round, so systematic
    # first/last effects (cache warmth, frequency scaling) cancel; and
    # the reported overhead is the *median of per-round ratios* — a
    # single slow round (cron wakeup, GC) shifts one sample, not the
    # estimate, where best-of-N comparisons were at the mercy of which
    # mode caught the quiet moment.
    os.environ[ENGINE_ENV] = "auto"
    overhead_rounds = max(args.repeat, OVERHEAD_ROUNDS)
    modes = [
        ("untraced", _regen_figure4),
        ("traced", _fig4_traced),
        ("empty_plan", _fig4_empty_plan),
    ]
    round_times = {name: [] for name, __ in modes}
    for round_index in range(overhead_rounds):
        pivot = round_index % len(modes)
        for name, fn in modes[pivot:] + modes[:pivot]:
            default_cache().clear()
            started = time.perf_counter()
            fn()
            round_times[name].append(time.perf_counter() - started)

    def _median_ratio(name: str) -> float:
        ratios = sorted(
            mode_s / base_s
            for mode_s, base_s in zip(
                round_times[name], round_times["untraced"]
            )
        )
        return ratios[len(ratios) // 2] - 1.0

    untraced_s = min(round_times["untraced"])
    traced_s = min(round_times["traced"])
    faulted_s = min(round_times["empty_plan"])
    trace_overhead = _median_ratio("traced")
    faults_overhead = _median_ratio("empty_plan")

    # Sweep engine: the figure-7 grid, serial per-cell loop (the exact
    # code shape the consumers used before repro.sweep existed: every
    # cell rebuilds its runtime and table from scratch) vs the sharded
    # engine on SWEEP_WORKERS processes.  The cache stays off so this
    # measures execution strategy, not cache hits; the two results must
    # be bit-identical.
    from repro.sweep import figure7_spec, run_serial, run_sweep

    os.environ[ENGINE_ENV] = "auto"
    sweep_spec = figure7_spec()
    serial_sweep_s = float("inf")
    parallel_sweep_s = float("inf")
    serial_digest = parallel_digest = None
    for __ in range(args.repeat):
        default_cache().clear()
        started = time.perf_counter()
        serial_result = run_serial(sweep_spec, batched=False)
        serial_sweep_s = min(
            serial_sweep_s, time.perf_counter() - started
        )
        serial_digest = serial_result.digest()
        default_cache().clear()
        started = time.perf_counter()
        parallel_result = run_sweep(sweep_spec, workers=SWEEP_WORKERS)
        parallel_sweep_s = min(
            parallel_sweep_s, time.perf_counter() - started
        )
        parallel_digest = parallel_result.digest()
    sweep_identical = serial_digest == parallel_digest
    sweep_speedup = (
        serial_sweep_s / parallel_sweep_s
        if parallel_sweep_s > 0
        else float("inf")
    )

    # Batched engine: the same figure-7 grid evaluated as vectorized
    # numpy passes in one process (run_sweep(engine="batch")), against
    # the same honest serial baseline.  Cache stays off; the payload
    # must be bit-identical, cell for cell.
    batch_sweep_s = float("inf")
    batch_digest = None
    batch_stats = {}
    for __ in range(args.repeat):
        default_cache().clear()
        started = time.perf_counter()
        batch_result = run_sweep(sweep_spec, workers=1, engine="batch")
        batch_sweep_s = min(batch_sweep_s, time.perf_counter() - started)
        batch_digest = batch_result.digest()
        batch_stats = batch_result.stats
    batch_identical = serial_digest == batch_digest
    batch_speedup = (
        serial_sweep_s / batch_sweep_s if batch_sweep_s > 0 else float("inf")
    )

    # Traffic engine throughput: drive a sustained open-loop workload
    # through the discrete-event engine and report events processed per
    # wall-clock second, plus a replay for the bit-identity guarantee.
    from repro.load import (
        LoadEngine,
        LoadProfile,
        OpenLoopSpec,
        RequestTemplate,
    )

    load_profile = LoadProfile(
        name="bench",
        nodes=16,
        open_loops=(
            OpenLoopSpec(
                name="bench",
                rate_per_s=50_000.0,
                templates=(
                    RequestTemplate("small", nbytes=4096),
                    RequestTemplate("large", y="64", nbytes=65536),
                ),
            ),
        ),
    )
    started = time.perf_counter()
    load_result = LoadEngine(load_profile, seed=7).run(LOAD_HORIZON_NS)
    load_s = time.perf_counter() - started
    load_events = load_result.stats["events"]
    load_eps = load_events / load_s if load_s > 0 else float("inf")
    load_replay = LoadEngine(load_profile, seed=7).run(LOAD_HORIZON_NS)
    load_identical = load_result.digest() == load_replay.digest()
    load_digest_pinned = (
        load_result.digest() == LOAD_PROTECTION_OFF_DIGEST
    )

    # Cache effect: cold vs warm table regeneration with caching on.
    del os.environ[CACHE_ENV]
    os.environ[ENGINE_ENV] = "auto"
    default_cache().clear(disk=True)
    started = time.perf_counter()
    _regen_table1()
    cold_s = time.perf_counter() - started
    started = time.perf_counter()
    _regen_table1()
    warm_s = time.perf_counter() - started
    os.environ.pop(ENGINE_ENV, None)

    sections = {}
    for name in SECTIONS:
        speedup = (
            scalar_times[name] / fast_times[name]
            if fast_times[name] > 0
            else float("inf")
        )
        sections[name] = {
            "scalar_s": round(scalar_times[name], 4),
            "fast_s": round(fast_times[name], 4),
            "speedup": round(speedup, 2),
        }
    payload = {
        "generated_by": "scripts/bench_speed.py",
        "engine_version": ENGINE_VERSION,
        "fastpath_version": FASTPATH_VERSION,
        "sections": sections,
        "calibration_cache": {
            "table1_cold_s": round(cold_s, 4),
            "table1_warm_s": round(warm_s, 4),
        },
        "trace_overhead": {
            "figure4_untraced_s": round(untraced_s, 4),
            "figure4_traced_s": round(traced_s, 4),
            "overhead_pct": round(trace_overhead * 100.0, 2),
        },
        "faults_overhead": {
            "figure4_no_plan_s": round(untraced_s, 4),
            "figure4_empty_plan_s": round(faulted_s, 4),
            "overhead_pct": round(faults_overhead * 100.0, 2),
        },
        "sweep": {
            "grid": "figure7",
            "cells": len(serial_result),
            "workers": SWEEP_WORKERS,
            "serial_s": round(serial_sweep_s, 4),
            "parallel_s": round(parallel_sweep_s, 4),
            "speedup": round(sweep_speedup, 2),
            "bit_identical": sweep_identical,
            "digest": parallel_digest,
        },
        "batch": {
            "grid": "figure7",
            "cells": len(batch_result),
            "batch_version": BATCH_VERSION,
            "serial_s": round(serial_sweep_s, 4),
            "batch_s": round(batch_sweep_s, 4),
            "speedup": round(batch_speedup, 2),
            "groups": batch_stats.get("batch_groups"),
            "fallbacks": batch_stats.get("batch_fallbacks"),
            "bit_identical": batch_identical,
            "digest": batch_digest,
        },
        "load": {
            "profile": load_profile.name,
            "horizon_ns": LOAD_HORIZON_NS,
            "requests": load_result.completed,
            "events": load_events,
            "wall_s": round(load_s, 4),
            "events_per_s": round(load_eps, 1),
            "bit_identical": load_identical,
            "digest": load_result.digest(),
        },
        "parity_mismatches": len(mismatches),
        "meets_target": {
            "figure4_speedup_gte_5x":
                sections["figure4"]["speedup"] >= FIG4_TARGET_SPEEDUP,
            "figure4_trace_overhead_lt_2pct":
                trace_overhead < TRACE_OVERHEAD_LIMIT,
            "figure4_faults_off_overhead_lt_2pct":
                faults_overhead < FAULTS_OVERHEAD_LIMIT,
            "figure7_sweep_speedup_gte_2x":
                sweep_speedup >= SWEEP_TARGET_SPEEDUP,
            "figure7_sweep_bit_identical": sweep_identical,
            "figure7_batch_speedup_gte_10x":
                batch_speedup >= BATCH_TARGET_SPEEDUP,
            "figure7_batch_bit_identical": batch_identical,
            "load_engine_gte_25k_events_per_s":
                load_eps >= LOAD_TARGET_EVENTS_PER_S,
            "load_replay_bit_identical": load_identical,
            "load_protection_off_digest_pinned": load_digest_pinned,
        },
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    print(f"{'section':10} {'scalar':>9} {'fast':>9} {'speedup':>8}")
    for name, row in sections.items():
        print(
            f"{name:10} {row['scalar_s']:8.2f}s {row['fast_s']:8.2f}s "
            f"{row['speedup']:7.2f}x"
        )
    print(
        f"table1 with calibration cache: cold {cold_s:.2f}s -> "
        f"warm {warm_s * 1e3:.1f}ms"
    )
    print(
        f"figure4 with tracer installed: {traced_s:.2f}s "
        f"({trace_overhead * 100.0:+.1f}% vs untraced, median of "
        f"{overhead_rounds} rounds)"
    )
    print(
        f"figure4 with empty fault plan: {faulted_s:.2f}s "
        f"({faults_overhead * 100.0:+.1f}% vs no plan, median of "
        f"{overhead_rounds} rounds)"
    )
    print(
        f"figure7 sweep: serial {serial_sweep_s:.2f}s -> "
        f"{SWEEP_WORKERS} workers {parallel_sweep_s:.2f}s "
        f"({sweep_speedup:.2f}x, "
        f"{'bit-identical' if sweep_identical else 'RESULTS DIFFER'})"
    )
    print(
        f"figure7 batch engine: serial {serial_sweep_s:.2f}s -> "
        f"batched {batch_sweep_s:.2f}s "
        f"({batch_speedup:.2f}x, "
        f"{batch_stats.get('batch_groups')} groups, "
        f"{batch_stats.get('batch_fallbacks')} fallbacks, "
        f"{'bit-identical' if batch_identical else 'RESULTS DIFFER'})"
    )
    print(
        f"load engine: {load_result.completed} requests / "
        f"{load_events} events in {load_s:.2f}s "
        f"({load_eps:,.0f} events/s, "
        f"{'bit-identical replay' if load_identical else 'REPLAY DIFFERS'})"
    )
    print(f"wrote {args.output}")

    if trace_overhead >= TRACE_OVERHEAD_LIMIT:
        print(
            f"FAIL: tracer overhead {trace_overhead * 100.0:.1f}% >= "
            f"{TRACE_OVERHEAD_LIMIT * 100.0:.0f}% target "
            f"(median of {overhead_rounds} rotated rounds)",
            file=sys.stderr,
        )
        return 1
    if faults_overhead >= FAULTS_OVERHEAD_LIMIT:
        print(
            f"FAIL: faults-off overhead {faults_overhead * 100.0:.1f}% >= "
            f"{FAULTS_OVERHEAD_LIMIT * 100.0:.0f}% target "
            f"(median of {overhead_rounds} rotated rounds)",
            file=sys.stderr,
        )
        return 1
    if not load_identical:
        print(
            f"FAIL: load-engine replay differs "
            f"({load_result.digest()} vs {load_replay.digest()})",
            file=sys.stderr,
        )
        return 1
    if not load_digest_pinned:
        print(
            f"FAIL: protection-off load digest moved "
            f"({load_result.digest()} vs pinned "
            f"{LOAD_PROTECTION_OFF_DIGEST}) — the overload layer "
            f"must not perturb the unprotected engine",
            file=sys.stderr,
        )
        return 1
    if load_eps < LOAD_FLOOR_EVENTS_PER_S:
        print(
            f"FAIL: load engine {load_eps:,.0f} events/s < "
            f"{LOAD_FLOOR_EVENTS_PER_S:,.0f} regression floor",
            file=sys.stderr,
        )
        return 1
    if load_eps < LOAD_TARGET_EVENTS_PER_S:
        print(
            f"WARN: load engine {load_eps:,.0f} events/s < "
            f"{LOAD_TARGET_EVENTS_PER_S:,.0f} target",
            file=sys.stderr,
        )

    if mismatches:
        print(f"FAIL: {len(mismatches)} scalar/fast figure-4 mismatches",
              file=sys.stderr)
        return 1
    if not sweep_identical:
        print(
            f"FAIL: figure-7 sweep results differ between serial and "
            f"{SWEEP_WORKERS}-worker execution "
            f"({serial_digest} vs {parallel_digest})",
            file=sys.stderr,
        )
        return 1
    if not payload["meets_target"]["figure7_sweep_speedup_gte_2x"]:
        print(
            f"FAIL: figure-7 sweep speedup {sweep_speedup:.2f}x < "
            f"{SWEEP_TARGET_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
        return 1
    if not batch_identical:
        print(
            f"FAIL: figure-7 batch results differ from the serial loop "
            f"({serial_digest} vs {batch_digest})",
            file=sys.stderr,
        )
        return 1
    if batch_speedup < BATCH_FLOOR_SPEEDUP:
        print(
            f"FAIL: figure-7 batch speedup {batch_speedup:.2f}x < "
            f"{BATCH_FLOOR_SPEEDUP:.0f}x regression floor",
            file=sys.stderr,
        )
        return 1
    if batch_speedup < BATCH_TARGET_SPEEDUP:
        print(
            f"WARN: figure-7 batch speedup {batch_speedup:.2f}x < "
            f"{BATCH_TARGET_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
    if not payload["meets_target"]["figure4_speedup_gte_5x"]:
        print(
            f"FAIL: figure-4 speedup "
            f"{sections['figure4']['speedup']:.2f}x < "
            f"{FIG4_TARGET_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
