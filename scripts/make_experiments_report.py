#!/usr/bin/env python
"""Regenerate the full paper-vs-ours data behind EXPERIMENTS.md.

Runs every table/figure regeneration in repro.bench and prints the
comparison blocks.  Use after changing calibration or runtime code to
refresh the numbers recorded in EXPERIMENTS.md:

    python scripts/make_experiments_report.py > /tmp/report.txt
"""

from __future__ import annotations

from repro.bench import (
    figure1,
    figure4,
    figure7,
    figure8,
    render,
    section341,
    section51,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.machines import paragon, t3d


def print_series(title, series):
    print(f"== {title} ==")
    for label, points in series.items():
        print(label, " ".join(f"{x}:{y:.1f}" for x, y in points))
    print()


def print_grid(title, results):
    print(f"== {title} ==")
    print(f"{'pattern':8} {'pack mdl':>9} {'pack meas':>10} "
          f"{'chain mdl':>10} {'chain meas':>11}")
    for pattern, entry in results.items():
        print(
            f"{pattern:8} {entry['buffer-packing model']:9.1f} "
            f"{entry['buffer-packing measured']:10.1f} "
            f"{entry['chained model']:10.1f} "
            f"{entry['chained measured']:11.1f}"
        )
    print()


def main() -> None:
    comparisons = [
        ("Table 1 (T3D)", table1, (t3d(),)),
        ("Table 1 (Paragon)", table1, (paragon(),)),
        ("Table 2 (T3D)", table2, (t3d(),)),
        ("Table 2 (Paragon)", table2, (paragon(),)),
        ("Table 3 (T3D)", table3, (t3d(),)),
        ("Table 3 (Paragon)", table3, (paragon(),)),
        ("Table 4 (T3D)", table4, (t3d(),)),
        ("Table 4 (Paragon)", table4, (paragon(),)),
        ("Section 5.1 (T3D)", section51, (t3d(),)),
        ("Section 5.1 (Paragon)", section51, (paragon(),)),
        ("Section 3.4.1", section341, ()),
        ("Table 5", table5, ()),
        ("Table 6", table6, ()),
    ]
    for title, function, args in comparisons:
        print(render(title, function(*args)))
        print()

    print_series("Figure 1 (T3D)", figure1(t3d()))
    print_series("Figure 1 (Paragon)", figure1(paragon()))
    print_series("Figure 4 (T3D)", figure4(t3d()))
    print_series("Figure 4 (Paragon)", figure4(paragon()))
    print_grid("Figure 7 (T3D)", figure7())
    print_grid("Figure 8 (Paragon)", figure8())


if __name__ == "__main__":
    main()
