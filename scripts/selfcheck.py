#!/usr/bin/env python
"""AST-based repo self-lint: enforce invariants the test suite can't.

Run as ``python scripts/selfcheck.py`` (CI does).  Checks every module
under ``src/repro/``:

* **SC001** — no mutable dataclass field defaults: an annotated class
  attribute in a ``@dataclass`` must not default to a list/dict/set
  literal (or a bare ``list()``/``dict()``/``set()`` call); use
  ``field(default_factory=...)``.
* **SC002** — every subclass of ``ModelError`` (transitively) carries a
  docstring: error types are user-facing API and the docstring is the
  only place their meaning is recorded.
* **SC003** — ``__all__`` consistency: every name a module exports must
  be bound at module top level (def / class / assignment / import),
  and ``__all__`` must not contain duplicates.
* **SC004** — the semantic verifier agrees with its own example plans:
  the clean example verifies ok, the racy and deadlocking examples
  produce their seeded CT21x findings, every payload passes the
  ``repro-verify-report/1`` validator, and fault coverage is complete
  on both machines.

Exit status: 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

MUTABLE_CALLS = ("list", "dict", "set")


def iter_modules() -> Iterator[Tuple[Path, ast.Module]]:
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        yield path, tree


def is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return True
    return False


def is_mutable_default(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in MUTABLE_CALLS
    return False


def check_mutable_dataclass_defaults(
    path: Path, tree: ast.Module
) -> Iterator[str]:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and is_dataclass_decorated(node)):
            continue
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            if statement.value is None:
                continue
            if is_mutable_default(statement.value):
                target = ast.unparse(statement.target)
                yield (
                    f"SC001 {path.relative_to(REPO_ROOT)}:{statement.lineno}: "
                    f"dataclass {node.name}.{target} has a mutable default; "
                    "use field(default_factory=...)"
                )


def collect_classes(
    modules: List[Tuple[Path, ast.Module]],
) -> Dict[str, Tuple[Path, ast.ClassDef, List[str]]]:
    """Map class name -> (path, node, base names) across the package.

    Class names are unique enough within this package for the
    transitive ``ModelError`` walk; a collision would only widen the
    set of classes required to carry docstrings.
    """
    classes: Dict[str, Tuple[Path, ast.ClassDef, List[str]]] = {}
    for path, tree in modules:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = []
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                classes[node.name] = (path, node, bases)
    return classes


def check_error_docstrings(
    modules: List[Tuple[Path, ast.Module]],
) -> Iterator[str]:
    classes = collect_classes(modules)
    error_types: Set[str] = {"ModelError"}
    grew = True
    while grew:
        grew = False
        for name, (__, ___, bases) in classes.items():
            if name not in error_types and error_types & set(bases):
                error_types.add(name)
                grew = True
    for name in sorted(error_types):
        if name not in classes:
            continue
        path, node, __ = classes[name]
        if ast.get_docstring(node) is None:
            yield (
                f"SC002 {path.relative_to(REPO_ROOT)}:{node.lineno}: "
                f"error class {name} has no docstring"
            )


def module_bindings(tree: ast.Module) -> Set[str]:
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return bound


def check_all_consistency(path: Path, tree: ast.Module) -> Iterator[str]:
    exported: List[str] = []
    lineno = 0
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            if isinstance(node.value, (ast.List, ast.Tuple)):
                lineno = node.lineno
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        exported.append(element.value)
    if not exported:
        return
    rel = path.relative_to(REPO_ROOT)
    duplicates = sorted({n for n in exported if exported.count(n) > 1})
    for name in duplicates:
        yield f"SC003 {rel}:{lineno}: __all__ lists {name!r} more than once"
    bound = module_bindings(tree)
    for name in exported:
        if name not in bound:
            yield (
                f"SC003 {rel}:{lineno}: __all__ exports {name!r} "
                "but the module never binds it"
            )


def check_verifier_examples() -> Iterator[str]:
    """SC004: run the verify passes over the repo's own example plans."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.verify import validate_verify_report
    from repro.analysis.verify.examples import (
        EXAMPLES,
        example_payload,
        example_result,
    )

    for machine_key in ("t3d", "paragon"):
        expected_rules = {"clean": set(), "racy": {"CT211"},
                          "deadlock": {"CT212"}}
        for example in sorted(EXAMPLES):
            where = f"verify[{machine_key}:{example}]"
            result = example_result(machine_key, example)
            rules = {d.rule for d in result.diagnostics}
            want = expected_rules[example]
            if example == "clean" and not result.ok:
                yield (
                    f"SC004 {where}: clean example reported findings "
                    f"{sorted(rules)}"
                )
            if want - rules:
                yield (
                    f"SC004 {where}: expected {sorted(want)} among "
                    f"diagnostics, got {sorted(rules)}"
                )
            uncovered = [
                entry.fault_class for entry in result.coverage
                if not entry.covered
            ]
            if uncovered:
                yield f"SC004 {where}: uncovered fault classes {uncovered}"
            problems = validate_verify_report(
                example_payload(machine_key, example)
            )
            for problem in problems:
                yield f"SC004 {where}: payload invalid: {problem}"


def main() -> int:
    modules = list(iter_modules())
    violations: List[str] = []
    for path, tree in modules:
        violations.extend(check_mutable_dataclass_defaults(path, tree))
        violations.extend(check_all_consistency(path, tree))
    violations.extend(check_error_docstrings(modules))
    violations.extend(check_verifier_examples())
    for violation in violations:
        print(violation)
    if violations:
        print(f"selfcheck: {len(violations)} violation(s)")
        return 1
    print(f"selfcheck: {len(modules)} modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
