#!/usr/bin/env python
"""Regenerate the committed golden values under ``tests/golden/data/``.

Run after an *intentional* behavior change and commit the resulting
diff — it documents exactly which numbers moved::

    PYTHONPATH=src python scripts/regen_goldens.py [--only NAME] [--check]

``--check`` regenerates nothing: it exits 1 if any committed golden
disagrees with freshly computed values (the same comparison the golden
tests run, usable as a pre-commit sanity pass).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.goldens import (  # noqa: E402
    GOLDEN_JSON_TARGETS,
    GOLDEN_TARGETS,
    compare_values,
    generate_golden,
    golden_dir,
    golden_path,
    json_diff,
    load_golden,
    load_json_golden,
    render_mismatches,
)

ALL_NAMES = sorted(set(GOLDEN_TARGETS) | set(GOLDEN_JSON_TARGETS))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", default=None, choices=ALL_NAMES,
                        help="regenerate a single golden")
    parser.add_argument("--check", action="store_true",
                        help="compare instead of writing; exit 1 on drift")
    args = parser.parse_args()

    names = [args.only] if args.only else ALL_NAMES
    os.makedirs(golden_dir(), exist_ok=True)
    failed = False
    for name in names:
        if name in GOLDEN_JSON_TARGETS:
            # Exact-JSON goldens: the committed file is the payload.
            payload = GOLDEN_JSON_TARGETS[name]()
            if args.check:
                problems = json_diff(load_json_golden(name), payload)
                if problems:
                    print(f"golden {name!r} drifted:", file=sys.stderr)
                    for problem in problems:
                        print(f"  {problem}", file=sys.stderr)
                    failed = True
                else:
                    print(f"ok     {name}")
                continue
            path = golden_path(name)
            with open(path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote  {path} (exact JSON)")
            continue
        if args.check:
            problems = compare_values(
                load_golden(name), GOLDEN_TARGETS[name]()
            )
            if problems:
                print(render_mismatches(name, problems), file=sys.stderr)
                failed = True
            else:
                print(f"ok     {name}")
            continue
        payload = generate_golden(name)
        path = golden_path(name)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote  {path} ({len(payload['values'])} cells)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
